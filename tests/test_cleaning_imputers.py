"""Imputer behaviours, including the §2.4 bias mechanics."""

import numpy as np
import pytest

from respdi.cleaning import (
    DropMissingImputer,
    GroupMeanImputer,
    HotDeckImputer,
    KNNImputer,
    MeanImputer,
    ModeImputer,
)
from respdi.datagen import inject_mar
from respdi.errors import NotFittedError, SpecificationError
from respdi.table import Schema, Table


@pytest.fixture
def grouped_table():
    """Two groups with very different x distributions."""
    schema = Schema([("g", "categorical"), ("x", "numeric"), ("z", "numeric")])
    rows = []
    for i in range(40):
        rows.append(("a", 0.0 + i % 3, 0.0 + i % 3))
    for i in range(10):
        rows.append(("b", 100.0 + i % 3, 100.0 + i % 3))
    return Table.from_rows(schema, rows)


def punch_holes(table, rows):
    values = list(table.column("x"))
    for i in rows:
        values[i] = None
    return table.with_column("x", "numeric", values)


def test_drop_imputer_removes_rows(grouped_table):
    dirty = punch_holes(grouped_table, [0, 45])
    out = DropMissingImputer("x").fit_transform(dirty)
    assert len(out) == len(grouped_table) - 2


def test_drop_imputer_erodes_minority_coverage(grouped_table):
    """Dropping rows hits the small group proportionally harder."""
    dirty = punch_holes(grouped_table, [40, 41, 42, 43, 44])  # all group b
    out = DropMissingImputer("x").fit_transform(dirty)
    assert out.value_counts("g")["b"] == 5  # half the minority gone
    assert out.value_counts("g")["a"] == 40


def test_mean_imputer_drags_minority_toward_majority(grouped_table):
    dirty = punch_holes(grouped_table, [40, 41])  # group b values ~100
    out = MeanImputer("x").fit_transform(dirty)
    imputed = np.asarray(out.column("x"), dtype=float)[[40, 41]]
    # Global mean is ~21 — far below the group's true ~101 values.
    assert (imputed < 50).all()


def test_group_mean_imputer_respects_groups(grouped_table):
    dirty = punch_holes(grouped_table, [0, 40])
    out = GroupMeanImputer("x", ["g"]).fit_transform(dirty)
    values = np.asarray(out.column("x"), dtype=float)
    assert values[0] == pytest.approx(1.0, abs=0.2)  # group a mean
    assert values[40] == pytest.approx(101.0, abs=0.3)  # group b mean


def test_group_mean_falls_back_to_global_for_unseen_group(grouped_table):
    imputer = GroupMeanImputer("x", ["g"]).fit(grouped_table)
    other = Table.from_rows(grouped_table.schema, [("zzz", None, 1.0)])
    out = imputer.transform(other)
    assert np.asarray(out.column("x"), dtype=float)[0] == pytest.approx(
        grouped_table.aggregate("x", "mean")
    )


def test_hot_deck_draws_from_group_donors(grouped_table):
    dirty = punch_holes(grouped_table, [40])
    out = HotDeckImputer("x", ["g"], rng=1).fit_transform(dirty)
    value = np.asarray(out.column("x"), dtype=float)[40]
    assert value in {100.0, 101.0, 102.0}


def test_knn_imputer_uses_feature_neighbors(grouped_table):
    dirty = punch_holes(grouped_table, [40])
    out = KNNImputer("x", ["z"], k=3).fit_transform(dirty)
    value = np.asarray(out.column("x"), dtype=float)[40]
    # z=100 for row 40; nearest neighbors in z are the other b rows.
    assert value == pytest.approx(101.0, abs=1.5)


def test_knn_fallback_when_features_missing(grouped_table):
    dirty = grouped_table.with_column("z", "numeric", [None] * len(grouped_table))
    dirty = punch_holes(dirty, [0])
    imputer = KNNImputer("x", ["z"], k=3)
    with pytest.raises(Exception):
        # No complete donor rows at all.
        imputer.fit(dirty)


def test_mode_imputer_global_and_grouped():
    schema = Schema([("g", "categorical"), ("c", "categorical")])
    rows = [("a", "x")] * 5 + [("a", None)] + [("b", "y")] * 3 + [("b", None)]
    table = Table.from_rows(schema, rows)
    global_out = ModeImputer("c").fit_transform(table)
    assert global_out.column("c")[5] == "x"
    grouped_out = ModeImputer("c", ["g"]).fit_transform(table)
    assert grouped_out.column("c")[9] == "y"


def test_imputers_require_fit():
    with pytest.raises(NotFittedError):
        MeanImputer("x").transform(None)


def test_mean_imputer_requires_numeric(grouped_table):
    with pytest.raises(SpecificationError):
        MeanImputer("g").fit(grouped_table)


def test_imputation_against_mar_population(health_table):
    dirty, mask = inject_mar(
        health_table, "x0", "race", {"black": 0.4, "white": 0.05}, rng=2
    )
    out = GroupMeanImputer("x0", ["race"]).fit_transform(dirty)
    assert out.missing_mask("x0").sum() == 0
    # Untouched cells preserved.
    clean = np.asarray(health_table.column("x0"), dtype=float)
    fixed = np.asarray(out.column("x0"), dtype=float)
    assert np.allclose(clean[~mask], fixed[~mask])


def test_validations():
    with pytest.raises(SpecificationError):
        MeanImputer("")
    with pytest.raises(SpecificationError):
        GroupMeanImputer("x", [])
    with pytest.raises(SpecificationError):
        KNNImputer("x", ["x"])
    with pytest.raises(SpecificationError):
        KNNImputer("x", ["z"], k=0)
