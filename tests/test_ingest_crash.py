"""The ingest crash matrix: kill a daemon cycle at every step it takes.

A daemon cycle is scan → apply (adds, refreshes, removals) → publish,
and every commit inside it is the catalog's own atomic protocol — so a
kill anywhere must leave a *complete committed state*: the pre-cycle
catalog, the post-cycle catalog, or (for compound cycles) a state where
some of the cycle's independent commits landed and others did not.
Never a torn one.  Because entry fingerprints are pure content hashes,
every allowed state is constructed directly from table contents — no
reference runs needed — and a surviving snapshot either matches one of
them or fails the matrix.

The recovery half of the contract: whatever state a crash leaves, the
*next* cycle's scan re-derives the remaining work from fingerprints
alone and converges the catalog to the lake.

POSIX-only (``os.fork``); skipped elsewhere.
"""

import os

import pytest

from respdi.catalog import CatalogStore, ShardedCatalogStore, open_catalog
from respdi.catalog.sharding import shard_for
from respdi.catalog.store import table_fingerprint
from respdi.errors import SpecificationError
from respdi.faults import CrashSimulator
from respdi.ingest import IngestDaemon
from respdi.parallel import ExecutionContext
from respdi.table import Schema, Table, write_csv

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="crash simulation needs os.fork (POSIX)"
)

SCHEMA = Schema([("key", "categorical"), ("value", "numeric")])

#: Small hash family keeps each of the dozens of forked re-runs cheap.
OPTS = dict(rng=7, num_hashes=16, sketch_size=16)

#: Kill-step selection: the cycle's own points plus every write the
#: underlying catalog protocol takes on its behalf.
POINTS = ("ingest.", "catalog.", "shard.", "fsutil.")


def _table(tag, n=8, offset=0.0):
    rows = [(f"{tag}_{i}", float(i) + offset) for i in range(n)]
    return Table.from_rows(SCHEMA, rows)


BASE = {f"table{t}": _table(f"t{t}") for t in range(3)}


def _fingerprints(tables):
    return {name: table_fingerprint(table) for name, table in tables.items()}


def _write_lake(lake, tables):
    lake.mkdir(parents=True, exist_ok=True)
    for name, table in tables.items():
        write_csv(table, lake / f"{name}.csv")


def _snapshot(catalog_dir):
    """A complete, verified view of the catalog (plain or sharded).
    Anything that opens but fails verification raises, which the
    simulator reports as a corrupt outcome."""
    try:
        store = open_catalog(catalog_dir)
    except SpecificationError:
        return "absent"
    problems = store.verify()
    assert problems == [], f"verify failed after crash: {problems}"
    return {name: store.meta(name)["fingerprint"] for name in store.names}


def _classifier(allowed):
    def classify(workdir):
        snap = _snapshot(workdir / "cat")
        for state, expected in allowed.items():
            if snap == expected:
                return state
        raise AssertionError(
            f"post-crash state matches no committed state: {snap!r}"
        )

    return classify


def _cycle(workdir):
    # A fresh daemon per (forked) run, serial context so the child's
    # injection-point trace is deterministic step for step.
    daemon = IngestDaemon(
        workdir / "cat", workdir / "lake", context=ExecutionContext()
    )
    result = daemon.run_cycle()
    assert result.applied


def _assert_straddles_the_commit(report):
    detail = "\n".join(
        f"  step {o.step:3d} @ {o.point}: {o.problem}" for o in report.corrupt
    )
    assert report.corrupt == [], f"{report.summary()}\n{detail}"
    states = report.states
    assert states.get("new", 0) >= 1, report.summary()
    before = sum(count for state, count in states.items() if state != "new")
    assert before >= 1, report.summary()
    assert len(report.outcomes) >= 8, report.summary()


def test_kill_refresh_cycle_at_every_step_plain(tmp_path):
    """A refresh-only cycle is one commit: strictly old or new survives."""
    changed = dict(BASE, table1=_table("c1", n=5, offset=50.0))

    def prepare(workdir):
        CatalogStore.build(workdir / "cat", BASE, **OPTS)
        _write_lake(workdir / "lake", changed)

    allowed = {"old": _fingerprints(BASE), "new": _fingerprints(changed)}
    simulator = CrashSimulator(
        prepare, _cycle, _classifier(allowed),
        points=POINTS, operation="ingest-refresh-cycle",
    )
    _assert_straddles_the_commit(simulator.run(tmp_path / "matrix"))


def test_kill_add_remove_cycle_at_every_step_plain(tmp_path):
    """An add+remove cycle is two independent commits: a kill between
    them legitimately survives with the add landed and the removal not —
    a complete committed intermediate, never a torn state."""
    target = {
        "table0": BASE["table0"],
        "table1": BASE["table1"],
        "table3": _table("t3"),
    }

    def prepare(workdir):
        CatalogStore.build(workdir / "cat", BASE, **OPTS)
        _write_lake(workdir / "lake", target)  # table2 gone, table3 new

    old = _fingerprints(BASE)
    allowed = {
        "old": old,
        "added": dict(old, table3=table_fingerprint(target["table3"])),
        "new": _fingerprints(target),
    }
    simulator = CrashSimulator(
        prepare, _cycle, _classifier(allowed),
        points=POINTS, operation="ingest-add-remove-cycle",
    )
    report = simulator.run(tmp_path / "matrix")
    _assert_straddles_the_commit(report)
    # The matrix must actually observe the intermediate commit.
    assert report.states.get("added", 0) >= 1, report.summary()


def test_kill_refresh_cycle_at_every_step_sharded(tmp_path):
    """Cross-shard refreshes commit per shard: any composition of
    per-shard old/new for the changed tables is a legal survivor."""
    # Routing is a pure hash of the name: probe names until the two
    # changed tables are guaranteed to land on different shards.
    first = "table0"
    other = next(
        name
        for name in (f"table{i}" for i in range(1, 100))
        if shard_for(name, 2) != shard_for(first, 2)
    )
    base = dict(BASE)
    base[other] = _table("to")
    changed = dict(base)
    changed[first] = _table("x1", n=5, offset=60.0)
    changed[other] = _table("x2", n=5, offset=70.0)

    def prepare(workdir):
        ShardedCatalogStore.build(workdir / "cat", base, num_shards=2, **OPTS)
        _write_lake(workdir / "lake", changed)

    old = _fingerprints(base)
    new = _fingerprints(changed)
    allowed = {
        "old": old,
        f"{first}-only": dict(old, **{first: new[first]}),
        f"{other}-only": dict(old, **{other: new[other]}),
        "new": new,
    }
    simulator = CrashSimulator(
        prepare, _cycle, _classifier(allowed),
        points=POINTS, operation="ingest-sharded-refresh-cycle",
    )
    _assert_straddles_the_commit(simulator.run(tmp_path / "matrix"))


def test_interrupted_cycle_converges_on_the_next_one(tmp_path):
    """Recovery is rescan, not redo: a cycle that died after its add
    commit leaves the removal to the next cycle, which derives exactly
    the remaining work from the committed fingerprints."""
    target = {
        "table0": BASE["table0"],
        "table1": BASE["table1"],
        "table3": _table("t3"),
    }
    store = CatalogStore.build(tmp_path / "cat", BASE, **OPTS)
    _write_lake(tmp_path / "lake", target)
    # Simulate the crash's surviving intermediate: the add committed,
    # the removal never ran.
    store.add_table("table3", target["table3"])

    daemon = IngestDaemon(tmp_path / "cat", tmp_path / "lake")
    result = daemon.run_cycle()
    assert (result.added, result.refreshed, result.removed) == (0, 0, 1)
    assert _snapshot(tmp_path / "cat") == _fingerprints(target)
    assert daemon.run_cycle().applied is False  # converged, now idle
