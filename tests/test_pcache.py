"""Persistent result cache unit coverage: the crash-safe sidecar tier.

The contracts, one at a time: round-trip (put → get yields the payload,
restart included), checksum gating (any corruption is detected, deleted,
counted, and *never served*), generation keying (int and shard-vector
keys; stale generations swept on advance, shape changes swept too),
capacity bounds (oldest-by-mtime eviction), ``verify`` reporting without
deletion, and the serve-loop integration that makes a persistent hit
byte-identical to the computed response.
"""

import json

import pytest

from respdi.catalog import CatalogStore
from respdi.service import (
    KeywordQuery,
    PersistentResultCache,
    QueryService,
    handle_request,
    open_pcache,
)
from respdi.service.cache import is_hit
from respdi.service.pcache import (
    PCACHE_DIRNAME,
    PCACHE_SCHEMA_VERSION,
    entry_filename,
    sidecar_directory,
)
from respdi.table import Schema, Table

SCHEMA = Schema([("key", "categorical"), ("value", "numeric")])
OPTS = dict(rng=7, num_hashes=16, sketch_size=16)

PAYLOAD = [{"table": "alpha", "score": 0.5}, {"table": "beta", "score": 0.25}]


@pytest.fixture
def pcache(tmp_path):
    return PersistentResultCache(tmp_path / "pc", max_entries=64)


# -- round-trip ----------------------------------------------------------------


def test_put_get_roundtrip_and_counters(pcache):
    assert not is_hit(pcache.get(3, "fp"))
    pcache.put(3, "fp", PAYLOAD, op="keyword")
    got = pcache.get(3, "fp")
    assert is_hit(got) and got == PAYLOAD
    stats = pcache.stats()
    assert stats["hits"] == 1 and stats["misses"] == 1
    assert stats["stores"] == 1 and stats["size"] == 1


def test_roundtrip_survives_restart(tmp_path):
    first = PersistentResultCache(tmp_path / "pc")
    first.put(7, "fp", PAYLOAD)
    # A brand-new instance over the same directory — the restart case.
    second = PersistentResultCache(tmp_path / "pc")
    got = second.get(7, "fp")
    assert is_hit(got) and got == PAYLOAD
    assert second.stats()["hits"] == 1


def test_vector_generation_keys_roundtrip(pcache):
    vector = (3, 1, 4)
    pcache.put(vector, "fp", PAYLOAD)
    assert is_hit(pcache.get(vector, "fp"))
    assert is_hit(pcache.get([3, 1, 4], "fp"))  # list/tuple normalize alike
    assert not is_hit(pcache.get((3, 1, 5), "fp"))


def test_distinct_keys_do_not_collide(pcache):
    pcache.put(1, "fp", ["one"])
    pcache.put(2, "fp", ["two"])
    pcache.put(1, "other", ["three"])
    assert pcache.get(1, "fp") == ["one"]
    assert pcache.get(2, "fp") == ["two"]
    assert pcache.get(1, "other") == ["three"]
    assert entry_filename(1, "fp") != entry_filename(2, "fp")
    assert entry_filename(1, "fp") != entry_filename(1, "other")
    # int 1 and vector (1,) are different catalog shapes, never one key.
    assert entry_filename(1, "fp") != entry_filename((1,), "fp")


def test_cached_none_like_payloads_are_hits(pcache):
    pcache.put(1, "empty", [])
    got = pcache.get(1, "empty")
    assert is_hit(got) and got == []


# -- checksum gating -----------------------------------------------------------


def _entry_path(pcache, generation, fingerprint):
    return pcache.directory / entry_filename(generation, fingerprint)


def test_corrupted_payload_is_discarded_never_served(pcache):
    pcache.put(5, "fp", PAYLOAD)
    path = _entry_path(pcache, 5, "fp")
    entry = json.loads(path.read_text())
    entry["payload"][0]["score"] = 0.999  # bit rot: checksum now stale
    path.write_text(json.dumps(entry))
    assert not is_hit(pcache.get(5, "fp"))
    assert not path.exists()  # discarded on detection
    assert pcache.stats()["corrupt_discarded"] == 1
    # The recompute-overwrite path restores service.
    pcache.put(5, "fp", PAYLOAD)
    assert pcache.get(5, "fp") == PAYLOAD


def test_truncated_entry_is_discarded(pcache):
    pcache.put(5, "fp", PAYLOAD)
    path = _entry_path(pcache, 5, "fp")
    raw = path.read_text()
    path.write_text(raw[: len(raw) // 2])
    assert not is_hit(pcache.get(5, "fp"))
    assert pcache.stats()["corrupt_discarded"] == 1


def test_wrong_key_inside_entry_is_discarded(pcache):
    # A file at the right *name* claiming the wrong key is corrupt: the
    # gate trusts the entry's own statement, not the filename.
    pcache.put(5, "fp", PAYLOAD)
    path = _entry_path(pcache, 5, "fp")
    entry = json.loads(path.read_text())
    entry["generation"] = 6
    path.write_text(json.dumps(entry))
    assert not is_hit(pcache.get(5, "fp"))
    assert pcache.stats()["corrupt_discarded"] == 1


def test_foreign_schema_version_is_stale_not_corrupt(pcache):
    pcache.put(5, "fp", PAYLOAD)
    path = _entry_path(pcache, 5, "fp")
    entry = json.loads(path.read_text())
    entry["schema_version"] = PCACHE_SCHEMA_VERSION + 1
    path.write_text(json.dumps(entry))
    assert not is_hit(pcache.get(5, "fp"))
    assert pcache.stats()["corrupt_discarded"] == 0  # dropped silently


def test_verify_reports_without_deleting(pcache):
    pcache.put(1, "good", PAYLOAD)
    pcache.put(1, "bad", PAYLOAD)
    path = _entry_path(pcache, 1, "bad")
    entry = json.loads(path.read_text())
    entry["payload"] = ["tampered"]
    path.write_text(json.dumps(entry))
    problems = pcache.verify()
    assert len(problems) == 1 and "checksum mismatch" in problems[0]
    assert path.exists()  # verify audits; only the read path deletes
    assert len(pcache) == 2


# -- generation sweeps ---------------------------------------------------------


def test_observe_generation_sweeps_only_on_advance(pcache):
    pcache.put(3, "a", ["old"])
    pcache.put(4, "b", ["new"])
    assert pcache.observe_generation(4) == 1  # first observation sweeps
    assert pcache.observe_generation(4) == 0  # steady state: no rescan
    assert not is_hit(pcache.get(3, "a"))
    assert is_hit(pcache.get(4, "b"))
    assert pcache.stats()["swept"] == 1


def test_sweep_stale_vector_generations(pcache):
    pcache.put((2, 2), "a", ["old"])
    pcache.put((3, 2), "b", ["new"])
    assert pcache.sweep_stale((3, 2)) == 1
    assert is_hit(pcache.get((3, 2), "b"))


def test_sweep_drops_mismatched_generation_shapes(pcache):
    # A catalog resharded underneath its sidecar: int keys can never be
    # looked up against a vector generation (and vice versa) — swept.
    pcache.put(9, "a", ["scalar"])
    pcache.put((1, 1, 1), "b", ["wrong-width"])
    pcache.put((4, 4), "c", ["current"])
    assert pcache.sweep_stale((4, 4)) == 2
    assert is_hit(pcache.get((4, 4), "c"))


# -- bounds --------------------------------------------------------------------


def test_capacity_bound_evicts_oldest(tmp_path):
    import os

    pcache = PersistentResultCache(tmp_path / "pc", max_entries=2)
    pcache.put(1, "a", ["a"])
    pcache.put(1, "b", ["b"])
    # Force distinct mtimes so "oldest" is well-defined on coarse clocks.
    os.utime(_entry_path(pcache, 1, "a"), ns=(1, 1))
    pcache.put(1, "c", ["c"])
    assert len(pcache) == 2
    assert pcache.stats()["evictions"] == 1
    assert not is_hit(pcache.get(1, "a"))
    assert is_hit(pcache.get(1, "b")) and is_hit(pcache.get(1, "c"))


def test_max_entries_must_be_positive(tmp_path):
    from respdi.errors import SpecificationError

    with pytest.raises(SpecificationError):
        PersistentResultCache(tmp_path / "pc", max_entries=0)


def test_clear_empties_the_sidecar(pcache):
    pcache.put(1, "a", ["a"])
    pcache.put(1, "b", ["b"])
    pcache.clear()
    assert len(pcache) == 0


# -- sidecar placement ---------------------------------------------------------


def test_open_pcache_defaults_inside_the_catalog(tmp_path):
    pcache = open_pcache(tmp_path / "cat")
    assert pcache.directory == tmp_path / "cat" / PCACHE_DIRNAME
    assert sidecar_directory(tmp_path / "cat") == pcache.directory


def test_sidecar_is_invisible_to_catalog_verify(tmp_path):
    tables = {"alpha": Table.from_rows(SCHEMA, [("a", 1.0), ("b", 2.0)])}
    store = CatalogStore.build(tmp_path / "cat", tables, **OPTS)
    pcache = open_pcache(tmp_path / "cat")
    pcache.put(store.generation, "fp", PAYLOAD)
    assert store.verify() == []
    # Reopening (which sweeps orphan tmps) must not touch the sidecar.
    assert CatalogStore.open(tmp_path / "cat").verify() == []
    assert is_hit(pcache.get(store.generation, "fp"))


# -- serve-loop integration ----------------------------------------------------


def test_handle_request_persistent_hit_is_byte_identical(tmp_path):
    tables = {
        "alpha": Table.from_rows(SCHEMA, [("a", 1.0), ("b", 2.0)]),
        "beta": Table.from_rows(SCHEMA, [("c", 3.0)]),
    }
    CatalogStore.build(tmp_path / "cat", tables, **OPTS)
    service = QueryService(tmp_path / "cat", cache_size=0)  # no memory tier
    pcache = open_pcache(tmp_path / "cat")
    request = {"op": "keyword", "text": "alpha", "k": 3}
    cold = handle_request(service, request, pcache=pcache)
    assert pcache.stats()["stores"] == 1
    warm = handle_request(service, request, pcache=pcache)
    assert pcache.stats()["hits"] == 1
    assert json.dumps(cold, sort_keys=True) == json.dumps(warm, sort_keys=True)
    # And across a restart: a fresh pcache instance, still a hit.
    restarted = open_pcache(tmp_path / "cat")
    again = handle_request(service, request, pcache=restarted)
    assert restarted.stats()["hits"] == 1
    assert json.dumps(cold, sort_keys=True) == json.dumps(again, sort_keys=True)


def test_handle_request_stats_op_reports_pcache(tmp_path):
    tables = {"alpha": Table.from_rows(SCHEMA, [("a", 1.0)])}
    CatalogStore.build(tmp_path / "cat", tables, **OPTS)
    service = QueryService(tmp_path / "cat")
    pcache = open_pcache(tmp_path / "cat")
    handle_request(service, {"op": "keyword", "text": "alpha"}, pcache=pcache)
    response = handle_request(service, {"op": "stats"}, pcache=pcache)
    assert response["stats"]["pcache"]["stores"] == 1


def test_query_fingerprint_identity_spans_tiers(tmp_path):
    # The pcache keys on the same fingerprints as the memory cache, so
    # the two tiers agree about what "the same query" means.
    query = KeywordQuery(text="alpha", k=3)
    same = KeywordQuery(text="alpha", k=3)
    assert query.fingerprint == same.fingerprint
    pcache = PersistentResultCache(tmp_path / "pc")
    pcache.put(1, query.fingerprint, PAYLOAD)
    assert is_hit(pcache.get(1, same.fingerprint))
