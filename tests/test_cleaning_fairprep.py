"""FairPrep-style pipeline experiments."""

import pytest

from respdi.cleaning import GroupMeanImputer
from respdi.cleaning.fairprep import FairPrepExperiment, compare_interventions
from respdi.datagen import inject_mcar
from respdi.datagen.population import default_health_population
from respdi.errors import SpecificationError
from respdi.ml import GaussianNaiveBayes, train_test_split


@pytest.fixture(scope="module")
def biased_table():
    population = default_health_population(
        minority_fraction=0.25, label_bias_against_minority=-1.5, group_signal=1.5
    )
    return population.sample(2500, rng=21)


FEATURES = ["x0", "x1", "x2", "x3"]


def test_baseline_pipeline_runs(biased_table):
    experiment = FairPrepExperiment(FEATURES, "y", ["race"])
    result = experiment.run_split(biased_table, rng=1)
    assert 0.5 < result.report.accuracy <= 1.0
    assert result.intervention == "none"
    assert result.test_rows > 0
    summary = result.summary()
    assert set(summary) == {
        "accuracy", "dp_difference", "disparate_impact", "eo_difference",
        "accuracy_parity",
    }


def test_reweighing_reduces_dp(biased_table):
    results = compare_interventions(
        biased_table, FEATURES, "y", ["race"],
        interventions=("none", "reweigh"), rng=2,
    )
    assert (
        results["reweigh"].report.demographic_parity_difference
        <= results["none"].report.demographic_parity_difference + 0.05
    )


def test_all_interventions_run_on_shared_split(biased_table):
    results = compare_interventions(biased_table, FEATURES, "y", ["race"], rng=3)
    assert set(results) == {"none", "reweigh", "oversample", "smote"}
    for result in results.values():
        assert result.test_rows == results["none"].test_rows


def test_custom_model_factory(biased_table):
    experiment = FairPrepExperiment(
        FEATURES, "y", ["race"], model_factory=GaussianNaiveBayes
    )
    result = experiment.run_split(biased_table, rng=4)
    assert result.report.accuracy > 0.55


def test_imputer_stage_fits_on_train_only(biased_table):
    dirty, _ = inject_mcar(biased_table, "x0", 0.2, rng=5)
    imputer = GroupMeanImputer("x0", ["race"])
    experiment = FairPrepExperiment(FEATURES, "y", ["race"], imputer=imputer)
    train, test = train_test_split(dirty, 0.3, rng=6)
    result = experiment.run(train, test, rng=7)
    assert result.report.accuracy > 0.55


def test_unknown_intervention_rejected():
    with pytest.raises(SpecificationError, match="intervention"):
        FairPrepExperiment(FEATURES, "y", ["race"], intervention="magic")
    with pytest.raises(SpecificationError):
        FairPrepExperiment([], "y", ["race"])
    with pytest.raises(SpecificationError):
        FairPrepExperiment(FEATURES, "y", [])
