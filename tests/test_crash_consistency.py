"""The crash matrix: kill every catalog mutation at every step it takes.

Each parametrized case hands :class:`~respdi.faults.CrashSimulator` one
catalog operation.  The simulator records the operation's injection-point
trace, then re-runs it once per step in a forked child that dies by
``os._exit`` at exactly that step — no ``finally`` blocks, no cleanup,
the honest power-loss model.  After every kill the surviving directory
must open cleanly, pass ``verify``, and hold a *complete* committed
state (the one before the mutation, the one after, or — for compound
operations like ``build`` — a consistent intermediate commit).  A
single torn, half-published, or unreadable state fails the matrix.

POSIX-only (``os.fork``); skipped elsewhere.
"""

import json
import os
import sys

import pytest

from respdi.catalog import CatalogStore
from respdi.errors import CatalogCorruptError, SpecificationError
from respdi.faults import (
    CRASH_EXIT_CODE,
    CrashSimulator,
    FaultPlan,
    TornWriteFault,
    install_plan,
)
from respdi.table import Schema, Table

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="crash simulation needs os.fork (POSIX)"
)

SCHEMA = Schema([("key", "categorical"), ("value", "numeric")])


def _table(tag, n=10, offset=0.0):
    rows = [(f"{tag}_{i}", float(i) + offset) for i in range(n)]
    return Table.from_rows(SCHEMA, rows)


TABLES = {f"table{t}": _table(f"t{t}") for t in range(3)}
CHANGED = _table("changed", n=6, offset=100.0)

#: Small hash family keeps each of the dozens of forked re-runs cheap
#: without changing which injection points the operations cross.
OPTS = dict(rng=7, num_hashes=16, sketch_size=16)


def _snapshot(catalog_dir):
    """A complete, verified view of the catalog — or the ``"absent"``
    sentinel when no catalog exists there (yet).  Anything that opens
    but fails verification raises, which the simulator reports as a
    corrupt outcome."""
    try:
        store = CatalogStore.open(catalog_dir)
    except SpecificationError:
        return "absent"
    problems = store.verify()
    assert problems == [], f"verify failed after crash: {problems}"
    return {name: store.meta(name)["fingerprint"] for name in store.names}


def _classifier(allowed):
    """Map a surviving snapshot to its state name via *allowed*
    (``{state_name: snapshot}``); raise on anything else."""

    def classify(workdir):
        snap = _snapshot(workdir / "cat")
        for state, expected in allowed.items():
            if snap == expected:
                return state
        raise AssertionError(
            f"post-crash state matches no committed state: {snap!r}"
        )

    return classify


def _prepare_built(names):
    subset = {name: TABLES[name] for name in names}

    def prepare(workdir):
        CatalogStore.build(workdir / "cat", subset, **OPTS)

    return prepare


def _case_build():
    def prepare(workdir):
        pass  # nothing on disk: the mutation is the cold build itself

    def mutate(workdir):
        CatalogStore.build(workdir / "cat", TABLES, **OPTS)

    # ``build`` is create-then-register: two commits.  A kill between
    # them legitimately survives as an empty-but-valid catalog.
    return prepare, mutate, {"old": "absent", "created": {}}, "build"


def _case_add():
    def mutate(workdir):
        store = CatalogStore.open(workdir / "cat")
        store.add_table("table2", TABLES["table2"])

    return _prepare_built(["table0", "table1"]), mutate, {}, "add_table"


def _case_remove():
    def mutate(workdir):
        store = CatalogStore.open(workdir / "cat")
        store.remove_table("table2")

    return (
        _prepare_built(["table0", "table1", "table2"]),
        mutate,
        {},
        "remove_table",
    )


def _case_refresh():
    def mutate(workdir):
        store = CatalogStore.open(workdir / "cat")
        assert store.refresh("table1", CHANGED)  # changed → rebuilds entry

    return _prepare_built(["table0", "table1"]), mutate, {}, "refresh"


def _case_refresh_many():
    def mutate(workdir):
        store = CatalogStore.open(workdir / "cat")
        updated = store.refresh_many(
            {"table0": TABLES["table0"], "table1": CHANGED}
        )
        assert updated == {"table0": False, "table1": True}  # no-op + rebuild

    return _prepare_built(["table0", "table1"]), mutate, {}, "refresh_many"


@pytest.mark.parametrize(
    "case",
    [_case_build, _case_add, _case_remove, _case_refresh, _case_refresh_many],
    ids=["build", "add", "remove", "refresh", "refresh_many"],
)
def test_kill_at_every_step_never_corrupts(case, tmp_path):
    prepare, mutate, extra_states, operation = case()

    # Old and new states are computed from untouched reference runs;
    # builds are byte-deterministic, so fingerprints transfer across
    # directories.
    old_dir = tmp_path / "reference-old"
    old_dir.mkdir()
    prepare(old_dir)
    new_dir = tmp_path / "reference-new"
    new_dir.mkdir()
    prepare(new_dir)
    mutate(new_dir)

    allowed = dict(extra_states)
    allowed.setdefault("old", _snapshot(old_dir / "cat"))
    allowed["new"] = _snapshot(new_dir / "cat")

    simulator = CrashSimulator(
        prepare,
        mutate,
        _classifier(allowed),
        points=("fsutil.", "catalog."),
        operation=operation,
    )
    report = simulator.run(tmp_path / "matrix")

    detail = "\n".join(
        f"  step {o.step:3d} @ {o.point}: {o.problem}" for o in report.corrupt
    )
    assert report.corrupt == [], f"{report.summary()}\n{detail}"
    # The matrix is meaningful only if it actually straddled the commit:
    # some kills must land before it (old) and some after (new).
    states = report.states
    assert states.get("new", 0) >= 1, report.summary()
    before_commit = sum(
        count for state, count in states.items() if state != "new"
    )
    assert before_commit >= 1, report.summary()
    # And it must have exercised a real protocol, not a trivial one.
    assert len(report.outcomes) >= 8, report.summary()


def test_refresh_unchanged_table_takes_no_write_steps(tmp_path):
    """A fingerprint-match refresh must not touch disk at all — its
    kill-step matrix over write points is empty."""

    def mutate(workdir):
        store = CatalogStore.open(workdir / "cat")
        assert not store.refresh("table0", TABLES["table0"])

    simulator = CrashSimulator(
        _prepare_built(["table0"]),
        mutate,
        _classifier({}),
        points=("fsutil.",),
        operation="refresh-noop",
    )
    trace = simulator.record(tmp_path / "record")
    assert [p for p in trace if p.startswith("fsutil.")] == []


def test_torn_manifest_rename_is_detected_not_silent(tmp_path):
    """Simulate a non-atomic rename (torn destination) of MANIFEST.json:
    the catalog must refuse to open with :class:`CatalogCorruptError`
    rather than serve a half-written manifest as truth."""
    catalog_dir = tmp_path / "cat"
    CatalogStore.build(
        catalog_dir, {"table0": TABLES["table0"]}, **OPTS
    )
    manifest = catalog_dir / "MANIFEST.json"
    intact = manifest.read_bytes()

    sys.stdout.flush()
    sys.stderr.flush()
    pid = os.fork()
    if pid == 0:  # pragma: no cover - child exits via os._exit
        try:
            plan = FaultPlan().on(
                "fsutil.renamed",
                TornWriteFault(fraction=0.5),
                when=lambda info: info.get("path", "").endswith(
                    "MANIFEST.json"
                ),
            )
            install_plan(plan)
            store = CatalogStore.open(catalog_dir)
            store.add_table("table1", TABLES["table1"])
        except BaseException:
            os._exit(99)
        os._exit(98)
    _, status = os.waitpid(pid, 0)
    assert os.WIFEXITED(status) and os.WEXITSTATUS(status) == CRASH_EXIT_CODE

    torn = manifest.read_bytes()
    assert torn != intact  # the fault really mutilated the manifest
    with pytest.raises(ValueError):  # a torn JSON prefix cannot parse
        json.loads(torn.decode("utf-8", errors="replace"))
    with pytest.raises(CatalogCorruptError):
        CatalogStore.open(catalog_dir)
