"""LSH Ensemble containment search."""

import pytest

from respdi.discovery import LSHEnsemble
from respdi.discovery.lshensemble import _choose_bands, containment_to_jaccard
from respdi.errors import EmptyInputError, SpecificationError


def test_containment_to_jaccard_formula():
    # Containment 1.0 against equal-size candidates -> Jaccard 1.0.
    assert containment_to_jaccard(1.0, 100, 100) == pytest.approx(1.0)
    # Larger candidates dilute Jaccard at the same containment.
    assert containment_to_jaccard(0.5, 100, 1000) < containment_to_jaccard(
        0.5, 100, 100
    )
    with pytest.raises(SpecificationError):
        containment_to_jaccard(1.5, 10, 10)
    with pytest.raises(SpecificationError):
        containment_to_jaccard(0.5, 0, 10)


def test_choose_bands_respects_budget():
    for threshold in (0.1, 0.5, 0.9):
        bands, rows = _choose_bands(128, threshold)
        assert bands * rows <= 128
        assert bands >= 1 and rows >= 1


def build_ensemble(rng=0):
    ensemble = LSHEnsemble(num_hashes=128, num_partitions=3, rng=rng)
    base = {f"v{i}" for i in range(200)}
    ensemble.index("high", {f"v{i}" for i in range(180)} | {f"h{i}" for i in range(20)})
    ensemble.index("mid", {f"v{i}" for i in range(100)} | {f"m{i}" for i in range(100)})
    ensemble.index("low", {f"v{i}" for i in range(20)} | {f"l{i}" for i in range(180)})
    ensemble.index("none", {f"n{i}" for i in range(200)})
    ensemble.index("big", {f"v{i}" for i in range(150)} | {f"b{i}" for i in range(850)})
    ensemble.freeze()
    return ensemble, base


def test_query_finds_high_containment():
    ensemble, base = build_ensemble()
    hits = dict(ensemble.query(base, containment_threshold=0.7))
    assert "high" in hits
    assert "none" not in hits
    assert "low" not in hits


def test_query_threshold_monotonicity():
    ensemble, base = build_ensemble()
    strict = {k for k, _ in ensemble.query(base, 0.8)}
    loose = {k for k, _ in ensemble.query(base, 0.3)}
    assert strict <= loose


def test_partitioning_handles_size_skew():
    ensemble, base = build_ensemble()
    hits = dict(ensemble.query(base, containment_threshold=0.6))
    # 'big' has true containment 0.75 of the query despite being 5x larger.
    assert "big" in hits


def test_results_sorted_by_containment():
    ensemble, base = build_ensemble()
    hits = ensemble.query(base, containment_threshold=0.05)
    scores = [score for _, score in hits]
    assert scores == sorted(scores, reverse=True)


def test_lifecycle_errors():
    ensemble = LSHEnsemble(num_hashes=16, rng=0)
    with pytest.raises(EmptyInputError):
        ensemble.freeze()
    ensemble.index("a", {"x", "y"})
    with pytest.raises(SpecificationError, match="duplicate"):
        ensemble.index("a", {"z"})
    with pytest.raises(SpecificationError, match="freeze"):
        ensemble.query({"x"}, 0.5)
    ensemble.freeze()
    with pytest.raises(SpecificationError, match="after freeze"):
        ensemble.index("b", {"w"})
    with pytest.raises(SpecificationError):
        LSHEnsemble(num_partitions=0)
