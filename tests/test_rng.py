"""RNG plumbing."""

import numpy as np
import pytest

from respdi._rng import ensure_rng, spawn


def test_ensure_rng_forms():
    assert isinstance(ensure_rng(None), np.random.Generator)
    generator = np.random.default_rng(0)
    assert ensure_rng(generator) is generator
    a = ensure_rng(42).random()
    b = ensure_rng(42).random()
    assert a == b


def test_ensure_rng_rejects_junk():
    with pytest.raises(TypeError):
        ensure_rng("seed")


def test_spawn_independent_reproducible():
    children_a = spawn(np.random.default_rng(1), 3)
    children_b = spawn(np.random.default_rng(1), 3)
    assert len(children_a) == 3
    for x, y in zip(children_a, children_b):
        assert x.random() == y.random()
    fresh = spawn(np.random.default_rng(1), 2)
    assert fresh[0].random() != fresh[1].random()


def test_spawn_validation():
    with pytest.raises(ValueError):
        spawn(np.random.default_rng(0), -1)
