"""Correlation-driven acquisition on join graphs."""

import numpy as np
import pytest

from respdi.acquisition import (
    PricedColumnSource,
    buy_correlation,
    fisher_confidence_width,
)
from respdi.errors import EmptyInputError, SpecificationError
from respdi.table import Schema, Table


def correlated_sources(rho=0.7, n=3000, overlap=2000, seed=0, prices=(1.0, 1.0)):
    rng = np.random.default_rng(seed)
    keys = [f"k{i}" for i in range(n)]
    x = rng.normal(size=n)
    y = rho * x + np.sqrt(1 - rho**2) * rng.normal(size=n)
    start = n - overlap
    left = Table(
        Schema([("k", "categorical"), ("a", "numeric")]), {"k": keys, "a": x}
    )
    right_keys = keys[start:] + [f"only{i}" for i in range(start)]
    right_values = list(y[start:]) + list(rng.normal(size=start))
    right = Table(
        Schema([("k", "categorical"), ("b", "numeric")]),
        {"k": right_keys, "b": right_values},
    )
    return (
        PricedColumnSource(left, "k", "a", price=prices[0], rng=seed + 1),
        PricedColumnSource(right, "k", "b", price=prices[1], rng=seed + 2),
    )


def test_fisher_width_shrinks_with_n():
    widths = [fisher_confidence_width(0.5, n) for n in (10, 50, 200, 1000)]
    assert widths == sorted(widths, reverse=True)
    assert fisher_confidence_width(0.5, 3) == 2.0


def test_coordinated_reaches_target_cheaper_than_random():
    results = {}
    for strategy in ("coordinated", "random"):
        left, right = correlated_sources(seed=3)
        results[strategy] = buy_correlation(
            left, right, budget=5000, target_ci_width=0.2,
            strategy=strategy, rng=4,
        )
    assert results["coordinated"].reached_target
    assert results["random"].reached_target
    assert results["coordinated"].total_cost < 0.5 * results["random"].total_cost


def test_estimate_near_truth():
    left, right = correlated_sources(rho=0.7, seed=5)
    result = buy_correlation(
        left, right, budget=5000, target_ci_width=0.15, rng=6
    )
    assert result.estimate == pytest.approx(0.7, abs=result.ci_width)


def test_budget_exhaustion_reported():
    left, right = correlated_sources(seed=7)
    result = buy_correlation(
        left, right, budget=50, target_ci_width=0.01, rng=8
    )
    assert not result.reached_target
    assert result.total_cost <= 50


def test_trajectory_cost_monotone():
    left, right = correlated_sources(seed=9)
    result = buy_correlation(left, right, budget=2000, rng=10)
    costs = [cost for cost, _, _ in result.trajectory]
    assert costs == sorted(costs)


def test_coordinated_exhausts_shared_keys_gracefully():
    left, right = correlated_sources(n=200, overlap=40, seed=11)
    result = buy_correlation(
        left, right, budget=100000, target_ci_width=0.01,
        strategy="coordinated", batch_size=10, rng=12,
    )
    assert not result.reached_target  # only 40 joinable pairs exist
    assert result.pairs_used <= 40


def test_seller_accounting():
    left, right = correlated_sources(seed=13, prices=(2.0, 3.0))
    buy_correlation(left, right, budget=500, strategy="coordinated", rng=14)
    assert left.revenue > 0
    assert right.revenue > 0
    assert left.revenue % 2.0 == 0.0
    assert right.revenue % 3.0 == 0.0


def test_source_validations():
    schema = Schema([("k", "categorical"), ("v", "numeric")])
    table = Table.from_rows(schema, [("a", 1.0)])
    with pytest.raises(SpecificationError):
        PricedColumnSource(table, "k", "v", price=0.0)
    empty = Table.from_rows(schema, [(None, 1.0), ("b", None)])
    with pytest.raises(EmptyInputError):
        PricedColumnSource(empty, "k", "v")
    source = PricedColumnSource(table, "k", "v")
    with pytest.raises(SpecificationError):
        source.buy_random(0)


def test_buy_correlation_validations():
    left, right = correlated_sources(seed=15)
    with pytest.raises(SpecificationError):
        buy_correlation(left, right, budget=0)
    with pytest.raises(SpecificationError):
        buy_correlation(left, right, budget=10, strategy="psychic")
    with pytest.raises(SpecificationError):
        buy_correlation(left, right, budget=10, target_ci_width=0.0)
