"""MUP identification and coverage enhancement."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from respdi.coverage import (
    WILDCARD,
    CoverageAnalyzer,
    greedy_coverage_enhancement,
    pattern_dominates,
)
from respdi.errors import SpecificationError
from respdi.table import Schema, Table

X = WILDCARD


def make_table(rows):
    schema = Schema([("g", "categorical"), ("r", "categorical"), ("c", "categorical")])
    return Table.from_rows(schema, rows)


@pytest.fixture
def skewed_table():
    rows = (
        [("F", "w", "u")] * 30
        + [("M", "w", "u")] * 30
        + [("F", "b", "u")] * 2
        + [("M", "b", "r")] * 1
    )
    return make_table(rows)


def test_counts(skewed_table):
    analyzer = CoverageAnalyzer(skewed_table, ["g", "r"], threshold=5)
    assert analyzer.count((X, X)) == 63
    assert analyzer.count(("F", X)) == 32
    assert analyzer.count(("F", "b")) == 2
    assert analyzer.count(("F", "nonexistent")) == 0


def test_mups_match_naive_oracle(skewed_table):
    analyzer = CoverageAnalyzer(skewed_table, ["g", "r", "c"], threshold=5)
    fast = analyzer.mups()
    naive = analyzer.mups_naive()
    assert sorted(map(repr, fast.mups)) == sorted(map(repr, naive.mups))


def test_mup_semantics(skewed_table):
    analyzer = CoverageAnalyzer(skewed_table, ["g", "r"], threshold=5)
    report = analyzer.mups()
    assert (X, "b") in report.mups
    # (F, b) is uncovered but its parent (X, b) is uncovered too -> not a MUP.
    assert ("F", "b") not in report.mups
    assert report.is_uncovered(("F", "b"))
    assert not report.is_uncovered(("F", "w"))


def test_every_mup_is_uncovered_with_covered_parents(skewed_table):
    analyzer = CoverageAnalyzer(skewed_table, ["g", "r", "c"], threshold=4)
    from respdi.coverage.patterns import pattern_parents

    for mup in analyzer.mups().mups:
        assert not analyzer.is_covered(mup)
        for parent in pattern_parents(mup):
            assert analyzer.is_covered(parent)


def test_uncovered_root():
    table = make_table([("F", "w", "u")] * 3)
    analyzer = CoverageAnalyzer(table, ["g", "r"], threshold=10)
    report = analyzer.mups()
    assert report.mups == [(X, X)]
    naive = analyzer.mups_naive()
    assert naive.mups == [(X, X)]


def test_fully_covered_dataset():
    table = make_table(
        [("F", "w", "u")] * 10
        + [("F", "b", "u")] * 10
        + [("M", "w", "u")] * 10
        + [("M", "b", "u")] * 10
    )
    analyzer = CoverageAnalyzer(table, ["g", "r"], threshold=5)
    assert analyzer.mups().mups == []


def test_pattern_breaker_prunes(skewed_table):
    analyzer = CoverageAnalyzer(skewed_table, ["g", "r", "c"], threshold=5)
    fast = analyzer.mups()
    naive = analyzer.mups_naive()
    assert fast.patterns_evaluated <= naive.patterns_evaluated


def test_describe(skewed_table):
    analyzer = CoverageAnalyzer(skewed_table, ["g", "r"], threshold=5)
    described = analyzer.mups().describe()
    assert any("'b'" in line for line in described)


def test_validations(skewed_table):
    with pytest.raises(SpecificationError):
        CoverageAnalyzer(skewed_table, ["g"], threshold=0)
    with pytest.raises(SpecificationError):
        CoverageAnalyzer(skewed_table, [], threshold=5)


def test_numeric_attribute_rejected(health_table):
    with pytest.raises(SpecificationError, match="categorical"):
        CoverageAnalyzer(health_table, ["x0"], threshold=5)


def test_enhancement_covers_the_given_mups(skewed_table):
    analyzer = CoverageAnalyzer(skewed_table, ["g", "r"], threshold=5)
    mups = analyzer.mups().mups
    plan = greedy_coverage_enhancement(analyzer, mups)
    assert plan
    rows = list(skewed_table.iter_rows())
    for combo, copies in plan:
        for _ in range(copies):
            rows.append((combo[0], combo[1], "u"))
    enhanced = make_table(rows)
    analyzer2 = CoverageAnalyzer(enhanced, ["g", "r"], threshold=5)
    for mup in mups:
        assert analyzer2.is_covered(mup)


def test_full_coverage_plan_kills_all_mups(skewed_table):
    from respdi.coverage import full_coverage_plan

    analyzer = CoverageAnalyzer(skewed_table, ["g", "r"], threshold=5)
    plan = full_coverage_plan(analyzer)
    assert plan
    rows = list(skewed_table.iter_rows())
    for combo, copies in plan:
        for _ in range(copies):
            rows.append((combo[0], combo[1], "u"))
    enhanced = make_table(rows)
    analyzer2 = CoverageAnalyzer(enhanced, ["g", "r"], threshold=5)
    assert analyzer2.mups().mups == []


def test_enhancement_shares_rows_across_compatible_mups():
    # Both MUPs dominated by the same full combination -> one plan entry.
    rows = [("F", "w", "u")] * 20 + [("M", "b", "r")] * 1
    table = make_table(rows)
    analyzer = CoverageAnalyzer(table, ["g", "r"], threshold=3)
    mups = analyzer.mups().mups
    plan = greedy_coverage_enhancement(analyzer, mups)
    combos = [combo for combo, _ in plan]
    assert ("M", "b") in combos


@st.composite
def random_tables(draw):
    n = draw(st.integers(5, 40))
    rows = [
        (
            draw(st.sampled_from(["a", "b"])),
            draw(st.sampled_from(["x", "y", "z"])),
            "c",
        )
        for _ in range(n)
    ]
    return make_table(rows)


@given(table=random_tables(), threshold=st.integers(1, 8))
@settings(max_examples=40, deadline=None)
def test_pattern_breaker_equals_naive_property(table, threshold):
    analyzer = CoverageAnalyzer(table, ["g", "r"], threshold=threshold)
    fast = sorted(map(repr, analyzer.mups().mups))
    naive = sorted(map(repr, analyzer.mups_naive().mups))
    assert fast == naive


@given(table=random_tables(), threshold=st.integers(1, 8))
@settings(max_examples=40, deadline=None)
def test_uncovered_region_characterization(table, threshold):
    """A pattern is uncovered iff dominated by some MUP."""
    analyzer = CoverageAnalyzer(table, ["g", "r"], threshold=threshold)
    report = analyzer.mups()
    for pattern in analyzer.all_patterns():
        dominated = any(pattern_dominates(m, pattern) for m in report.mups)
        assert dominated == (not analyzer.is_covered(pattern))
