"""Model-based testing of Table against a plain-Python row list.

A hypothesis RuleBasedStateMachine applies random operation sequences
(filter, take, concat, with_column, rename, distinct, sort) to both a
:class:`~respdi.table.Table` and a naive list-of-tuples model, then
checks they agree after every step — the strongest guard against subtle
copy/aliasing bugs in the column-oriented implementation.
"""

import math

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from respdi.table import Eq, Range, Schema, Table

SCHEMA = Schema([("g", "categorical"), ("x", "numeric")])


def norm(value):
    if isinstance(value, float) and math.isnan(value):
        return None
    return value


class TableMachine(RuleBasedStateMachine):
    @initialize(
        rows=st.lists(
            st.tuples(
                st.sampled_from(["a", "b", None]),
                st.one_of(st.none(), st.integers(-5, 5).map(float)),
            ),
            min_size=0,
            max_size=12,
        )
    )
    def start(self, rows):
        self.table = Table.from_rows(SCHEMA, rows)
        self.model = [tuple(row) for row in rows]

    @rule(value=st.sampled_from(["a", "b"]))
    def filter_eq(self, value):
        self.table = self.table.filter(Eq("g", value))
        self.model = [row for row in self.model if row[0] == value]

    @rule(lo=st.integers(-5, 5))
    def filter_range(self, lo):
        self.table = self.table.filter(Range("x", float(lo), None))
        self.model = [
            row for row in self.model if row[1] is not None and row[1] >= lo
        ]

    @rule(data=st.data())
    def take_prefix(self, data):
        n = data.draw(st.integers(0, len(self.model)))
        self.table = self.table.head(n)
        self.model = self.model[:n]

    @rule()
    def self_concat(self):
        if len(self.model) > 30:
            return  # keep the state small
        self.table = self.table.concat(self.table)
        self.model = self.model + self.model

    @rule()
    def distinct(self):
        self.table = self.table.distinct()
        seen = set()
        out = []
        for row in self.model:
            if row not in seen:
                seen.add(row)
                out.append(row)
        self.model = out

    @rule(constant=st.integers(-3, 3))
    def replace_x(self, constant):
        self.table = self.table.with_column(
            "x", "numeric", [float(constant)] * len(self.model)
        )
        self.model = [(g, float(constant)) for g, _ in self.model]

    @rule()
    def sort_by_x(self):
        self.table = self.table.sort_by("x")
        present = sorted(
            (row for row in self.model if row[1] is not None),
            key=lambda row: row[1],
        )
        missing = [row for row in self.model if row[1] is None]
        self.model = present + missing

    @invariant()
    def table_matches_model(self):
        assert len(self.table) == len(self.model)
        actual = [
            (norm(row[0]), norm(row[1])) for row in self.table.iter_rows()
        ]
        expected = [(norm(g), norm(x)) for g, x in self.model]
        assert actual == expected


TableMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=12, deadline=None
)
TestTableMachine = TableMachine.TestCase
