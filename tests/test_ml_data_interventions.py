"""Data plumbing and pre-processing interventions."""

import numpy as np
import pytest

from respdi.errors import EmptyInputError, SpecificationError
from respdi.ml import (
    oversample_groups,
    reweighing_weights,
    smote_oversample,
    standardize_columns,
    table_to_xy,
    train_test_split,
)
from respdi.table import Schema, Table


def test_table_to_xy_basic(health_table):
    X, y, groups = table_to_xy(
        health_table, ["x0", "x1"], "y", ["gender", "race"]
    )
    assert X.shape == (len(health_table), 2)
    assert set(np.unique(y)) <= {0, 1}
    assert groups[0] == (
        health_table.column("gender")[0],
        health_table.column("race")[0],
    )


def test_table_to_xy_drops_incomplete_rows():
    schema = Schema([("x", "numeric"), ("y", "numeric")])
    table = Table.from_rows(schema, [(1.0, 1.0), (None, 0.0), (2.0, None)])
    X, y, _ = table_to_xy(table, ["x"], "y")
    assert len(y) == 1


def test_table_to_xy_validations(health_table):
    with pytest.raises(SpecificationError):
        table_to_xy(health_table, [], "y")
    with pytest.raises(SpecificationError, match="binary"):
        table_to_xy(health_table, ["x0"], "x1")
    empty = Table.empty(health_table.schema)
    with pytest.raises(EmptyInputError):
        table_to_xy(empty, ["x0"], "y")


def test_train_test_split_partitions(health_table, rng):
    train, test = train_test_split(health_table, 0.25, rng)
    assert len(train) + len(test) == len(health_table)
    assert len(test) == pytest.approx(0.25 * len(health_table), abs=1)
    with pytest.raises(SpecificationError):
        train_test_split(health_table, 1.0)


def test_standardize_columns(health_table):
    out = standardize_columns(health_table, ["x0"])
    values = np.asarray(out.column("x0"), dtype=float)
    assert values.mean() == pytest.approx(0.0, abs=1e-9)
    assert values.std() == pytest.approx(1.0, abs=1e-9)


def test_standardize_with_reference(health_table, rng):
    train, test = train_test_split(health_table, 0.3, rng)
    scaled_test = standardize_columns(test, ["x0"], reference=train)
    # Test stats are near but not exactly standard (train stats used).
    values = np.asarray(scaled_test.column("x0"), dtype=float)
    assert abs(values.mean()) < 0.5


def test_reweighing_makes_group_label_independent():
    groups = ["a"] * 80 + ["b"] * 20
    labels = [1] * 60 + [0] * 20 + [1] * 5 + [0] * 15
    weights = reweighing_weights(groups, labels)
    # Weighted positive rate must be equal across groups.
    w = np.asarray(weights)
    y = np.asarray(labels)
    g = np.asarray(groups, dtype=object)
    for group in ("a", "b"):
        mask = g == group
        rate = (w[mask] * y[mask]).sum() / w[mask].sum()
        overall = (w * y).sum() / w.sum()
        assert rate == pytest.approx(overall, abs=1e-9)


def test_reweighing_validations():
    with pytest.raises(SpecificationError):
        reweighing_weights(["a"], [1, 0])
    with pytest.raises(EmptyInputError):
        reweighing_weights([], [])


def test_oversample_groups_balances(health_table, rng):
    out = oversample_groups(health_table, ["race"], rng)
    counts = out.value_counts("race")
    assert counts["black"] == counts["white"]


def test_smote_balances_and_interpolates(health_table, rng):
    out = smote_oversample(health_table, ["race"], ["x0", "x1", "x2", "x3"], rng=rng)
    counts = out.value_counts("race")
    assert counts["black"] == counts["white"]
    # Synthetic rows' feature values must lie within the minority range.
    minority_original = health_table.filter_mask(
        np.array([r == "black" for r in health_table.column("race")])
    )
    lo = minority_original.aggregate("x0", "min")
    hi = minority_original.aggregate("x0", "max")
    minority_new = out.filter_mask(
        np.array([r == "black" for r in out.column("race")])
    )
    values = np.asarray(minority_new.column("x0"), dtype=float)
    assert values.min() >= lo - 1e-9
    assert values.max() <= hi + 1e-9


def test_smote_singleton_group_duplicates():
    schema = Schema([("g", "categorical"), ("x", "numeric")])
    table = Table.from_rows(
        schema, [("a", 1.0), ("a", 2.0), ("a", 3.0), ("b", 9.0)]
    )
    out = smote_oversample(table, ["g"], ["x"], rng=0)
    b_rows = [row for row in out.iter_rows() if row[0] == "b"]
    assert len(b_rows) == 3
    assert all(row[1] == 9.0 for row in b_rows)


def test_smote_validations(health_table):
    with pytest.raises(SpecificationError):
        smote_oversample(health_table, ["race"], [])
    with pytest.raises(SpecificationError):
        smote_oversample(health_table, ["race"], ["x0"], k=0)
