"""Cross-module property-based invariants (hypothesis).

These target the *contracts* between components rather than single
functions: tailoring accounting identities, spec state machines,
predicate algebra laws, sampler validity, and the parallel engine's
serial-equivalence guarantees.
"""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from respdi import obs
from respdi.parallel import ExecutionContext, map_chunked
from respdi.table import Eq, Not, Range, Schema, Table
from respdi.tailoring import (
    CountSpec,
    MarginalCountSpec,
    RandomPolicy,
    RangeCountSpec,
    TableSource,
    tailor,
)

# -- predicate algebra ---------------------------------------------------------

rows_strategy = st.lists(
    st.tuples(
        st.sampled_from(["a", "b", "c", None]),
        st.one_of(st.none(), st.floats(-10, 10)),
    ),
    min_size=1,
    max_size=25,
)


def make_table(rows):
    schema = Schema([("g", "categorical"), ("x", "numeric")])
    return Table.from_rows(schema, rows)


@given(rows=rows_strategy, v1=st.sampled_from("abc"), v2=st.sampled_from("abc"))
@settings(max_examples=60, deadline=None)
def test_de_morgan_laws(rows, v1, v2):
    table = make_table(rows)
    p = Eq("g", v1)
    q = Range("x", -5, 5)
    left = (~(p & q)).mask(table)
    right = ((~p) | (~q)).mask(table)
    assert np.array_equal(left, right)
    left = (~(p | q)).mask(table)
    right = ((~p) & (~q)).mask(table)
    assert np.array_equal(left, right)


@given(rows=rows_strategy, value=st.sampled_from("abc"))
@settings(max_examples=60, deadline=None)
def test_double_negation(rows, value):
    table = make_table(rows)
    p = Eq("g", value)
    assert np.array_equal(p.mask(table), Not(Not(p)).mask(table))


@given(rows=rows_strategy)
@settings(max_examples=60, deadline=None)
def test_conjunction_is_intersection(rows):
    table = make_table(rows)
    p = Range("x", lo=0)
    q = Range("x", hi=5)
    both = table.filter(p & q)
    manual = table.filter(p).filter(q)
    assert both.equals(manual)


# -- tailoring accounting -------------------------------------------------------

group_values = st.sampled_from(["g1", "g2", "g3"])


@st.composite
def tailoring_case(draw):
    n_rows = draw(st.integers(30, 120))
    rows = [(draw(group_values), float(i)) for i in range(n_rows)]
    schema = Schema([("grp", "categorical"), ("x", "numeric")])
    table = Table.from_rows(schema, rows)
    present = {g for g, _ in rows}
    requirements = {
        (g,): draw(st.integers(0, 5)) for g in present
    }
    if all(v == 0 for v in requirements.values()):
        requirements[(next(iter(present)),)] = 1
    return table, requirements


@given(case=tailoring_case(), seed=st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_tailoring_accounting_identities(case, seed):
    table, requirements = case
    spec = CountSpec(("grp",), requirements)
    source = TableSource("s", table, cost=2.0)
    result = tailor([source], spec, RandomPolicy(), rng=seed, max_steps=5000)
    # Cost identity: every step pays the source cost.
    assert result.total_cost == pytest.approx(2.0 * result.steps)
    assert result.pulls[0] == result.steps
    assert sum(result.useful) == len(result.rows)
    assert sum(result.useful) <= result.steps
    if result.satisfied:
        assert result.deficits == {}
        collected = Table.from_dicts(table.schema, result.rows)
        counts = collected.group_counts(["grp"])
        for group, need in requirements.items():
            assert counts.get(group, 0) == need
    else:
        assert result.deficits


@given(case=tailoring_case(), seed=st.integers(0, 10_000))
@settings(max_examples=25, deadline=None)
def test_range_spec_never_overshoots(case, seed):
    table, requirements = case
    ranges = {g: (need, need + 2) for g, need in requirements.items()}
    spec = RangeCountSpec(("grp",), ranges)
    source = TableSource("s", table)
    result = tailor([source], spec, RandomPolicy(), rng=seed, max_steps=5000)
    collected = Table.from_dicts(table.schema, result.rows)
    counts = collected.group_counts(["grp"])
    for group, (lo, hi) in ranges.items():
        assert counts.get(group, 0) <= hi
        if result.satisfied:
            assert counts.get(group, 0) >= lo


@given(seed=st.integers(0, 10_000))
@settings(max_examples=20, deadline=None)
def test_marginal_spec_satisfies_every_marginal(seed):
    from respdi.datagen.population import default_health_population

    population = default_health_population(minority_fraction=0.3)
    table = population.sample(800, rng=seed)
    spec = MarginalCountSpec(
        ("gender", "race"),
        {"gender": {"F": 10, "M": 10}, "race": {"white": 10, "black": 10}},
    )
    source = TableSource("s", table)
    result = tailor([source], spec, RandomPolicy(), rng=seed, max_steps=5000)
    if result.satisfied:
        collected = Table.from_dicts(table.schema, result.rows)
        assert collected.value_counts("gender").get("F", 0) >= 10
        assert collected.value_counts("gender").get("M", 0) >= 10
        assert collected.value_counts("race").get("white", 0) >= 10
        assert collected.value_counts("race").get("black", 0) >= 10


# -- coverage enhancement ---------------------------------------------------------

@st.composite
def coverage_case(draw):
    n = draw(st.integers(10, 60))
    rows = [
        (
            draw(st.sampled_from(["a", "b"])),
            draw(st.sampled_from(["x", "y", "z"])),
        )
        for _ in range(n)
    ]
    threshold = draw(st.integers(2, 6))
    return rows, threshold


@given(case=coverage_case())
@settings(max_examples=30, deadline=None)
def test_full_coverage_plan_achieves_full_coverage(case):
    """Simulating the plan always yields a MUP-free data set."""
    from respdi.coverage import CoverageAnalyzer, full_coverage_plan

    rows, threshold = case
    schema = Schema([("g", "categorical"), ("r", "categorical")])
    table = Table.from_rows(schema, rows)
    analyzer = CoverageAnalyzer(table, ["g", "r"], threshold)
    plan = full_coverage_plan(analyzer)
    extended = list(rows)
    for combo, copies in plan:
        extended.extend([tuple(combo)] * copies)
    enhanced = Table.from_rows(schema, extended)
    enhanced_analyzer = CoverageAnalyzer(enhanced, ["g", "r"], threshold)
    assert enhanced_analyzer.mups().mups == []


# -- sampler validity ------------------------------------------------------------

@st.composite
def joinable_tables(draw):
    keys = ["k1", "k2", "k3", "k4"]
    left_rows = [
        (draw(st.sampled_from(keys)), float(i))
        for i in range(draw(st.integers(5, 30)))
    ]
    right_rows = [
        (draw(st.sampled_from(keys)), float(i))
        for i in range(draw(st.integers(5, 30)))
    ]
    schema_l = Schema([("k", "categorical"), ("a", "numeric")])
    schema_r = Schema([("k", "categorical"), ("b", "numeric")])
    return Table.from_rows(schema_l, left_rows), Table.from_rows(schema_r, right_rows)


@given(tables=joinable_tables(), seed=st.integers(0, 10_000))
@settings(max_examples=30, deadline=None)
def test_accept_reject_samples_are_real_join_tuples(tables, seed):
    from respdi.errors import EmptyInputError
    from respdi.sampling import AcceptRejectJoinSampler, full_join

    left, right = tables
    joined = full_join(left, right, ["k"])
    if len(joined) == 0:
        return
    sampler = AcceptRejectJoinSampler(left, right, "k", rng=seed)
    sample = sampler.sample(20)
    valid = {(row[0], row[1]) for row in joined.iter_rows()}
    for row in sample.iter_rows():
        assert (row[0], row[1]) in valid


# -- parallel execution engine -------------------------------------------------

_MAIN_THREAD = threading.main_thread()


def _affine(x):
    return 3 * x + 1


def _fails_off_main_thread(x):
    if threading.current_thread() is not _MAIN_THREAD:
        raise RuntimeError("injected worker fault")
    return 3 * x + 1


items_strategy = st.lists(st.integers(-10_000, 10_000), max_size=120)


@given(items=items_strategy, chunksize=st.sampled_from([1, 2, 7, 64]))
@settings(max_examples=30, deadline=None)
def test_parallel_chunk_size_independence(items, chunksize):
    """Chunking is a scheduling detail: chunksize never changes results."""
    serial = [_affine(x) for x in items]
    context = ExecutionContext(backend="threads", n_jobs=3, chunksize=chunksize)
    assert map_chunked(_affine, items, context) == serial
    one = ExecutionContext(backend="threads", n_jobs=3, chunksize=1)
    big = ExecutionContext(backend="threads", n_jobs=3, chunksize=64)
    assert map_chunked(_affine, items, one) == map_chunked(_affine, items, big)


@given(items=items_strategy, backend=st.sampled_from(["threads", "processes"]))
@settings(max_examples=30, deadline=None)
def test_parallel_n_jobs_one_equals_serial(items, backend):
    """``n_jobs=1`` under any backend is the serial backend."""
    serial = map_chunked(_affine, items, ExecutionContext())
    assert map_chunked(
        _affine, items, ExecutionContext(backend=backend, n_jobs=1)
    ) == serial


@given(items=st.lists(st.integers(-10_000, 10_000), min_size=4, max_size=40))
@settings(max_examples=15, deadline=None)
def test_parallel_fault_injection_retry_then_fallback(items):
    """A chunk whose worker always fails is retried exactly once, then
    completes via serial fallback — and the overall result still equals
    the serial answer, with every retry counted in ``parallel.retries``."""
    obs.enable()
    obs.reset()
    try:
        context = ExecutionContext(backend="threads", n_jobs=2, chunksize=2)
        result = map_chunked(_fails_off_main_thread, items, context)
        assert result == [_affine(x) for x in items]
        n_chunks = -(-len(items) // 2)
        counters = obs.global_registry().snapshot()["counters"]
        if n_chunks > 1:  # a single chunk short-circuits to the serial path
            # Exactly one retry and one serial fallback per failing chunk.
            assert counters["parallel.retries"] == float(n_chunks)
            assert counters["parallel.fallbacks"] == float(n_chunks)
        assert counters["parallel.tasks"] == float(n_chunks)
        assert counters["parallel.items"] == float(len(items))
    finally:
        obs.disable()
        obs.reset()


@given(tables=joinable_tables(), seed=st.integers(0, 10_000))
@settings(max_examples=30, deadline=None)
def test_chain_sampler_join_size_matches_oracle(tables, seed):
    from respdi.errors import EmptyInputError
    from respdi.sampling import ChainJoinSampler, ChainJoinSpec, full_join

    left, right = tables
    joined = full_join(left, right, ["k"])
    spec = ChainJoinSpec([left, right], [("k", "k")])
    if len(joined) == 0:
        with pytest.raises(EmptyInputError):
            ChainJoinSampler(spec, rng=seed)
        return
    sampler = ChainJoinSampler(spec, rng=seed)
    assert sampler.join_size == len(joined)
