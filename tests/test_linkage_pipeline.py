"""Blocking, matching, clustering, dedup, and fairness-aware evaluation."""

import pytest

from respdi.datagen import generate_person_registry
from respdi.errors import SpecificationError
from respdi.linkage import (
    FieldComparator,
    RecordMatcher,
    blocking_stats,
    cluster_matches,
    deduplicate,
    evaluate_linkage,
    jaro_winkler_similarity,
    key_blocking,
    levenshtein_similarity,
    numeric_similarity,
    sorted_neighborhood_blocking,
)
from respdi.table import Schema, Table


@pytest.fixture(scope="module")
def registry():
    return generate_person_registry(
        250, duplicates_per_entity=1,
        corruption_rates={"blue": 0.5, "green": 0.1}, rng=7,
    )


@pytest.fixture(scope="module")
def candidates(registry):
    return key_blocking(
        registry, lambda r: r["name"][:2] if r["name"] else None
    ) | sorted_neighborhood_blocking(registry, lambda r: r["name"], window=6)


@pytest.fixture(scope="module")
def matcher():
    return RecordMatcher(
        [
            FieldComparator("name", jaro_winkler_similarity, 3.0),
            FieldComparator("zip", levenshtein_similarity, 1.0),
            FieldComparator(
                "age", lambda a, b: numeric_similarity(a, b, scale=3.0), 1.0
            ),
        ],
        threshold=0.85,
    )


def test_registry_shape(registry):
    assert len(registry) == 500  # 250 entities x (1 clean + 1 duplicate)
    assert set(registry.column_names) == {"_entity", "group", "name", "zip", "age"}
    counts = registry.value_counts("_entity")
    assert all(count == 2 for count in counts.values())


def test_key_blocking_pairs_are_within_blocks(registry):
    pairs = key_blocking(registry, lambda r: r["group"])
    groups = registry.column("group")
    for i, j in pairs:
        assert groups[i] == groups[j]
        assert i < j


def test_sorted_neighborhood_window_bound(registry):
    window = 4
    pairs = sorted_neighborhood_blocking(registry, lambda r: r["name"], window)
    # Every record participates in at most 2*(window-1) pairs.
    from collections import Counter

    degree = Counter()
    for i, j in pairs:
        degree[i] += 1
        degree[j] += 1
    assert max(degree.values()) <= 2 * (window - 1)
    with pytest.raises(SpecificationError):
        sorted_neighborhood_blocking(registry, lambda r: r["name"], window=1)


def test_blocking_tradeoff(registry):
    """Tighter blocking prunes more but retains fewer true pairs."""
    tight = key_blocking(registry, lambda r: r["name"])  # exact-name blocks
    loose = key_blocking(registry, lambda r: r["name"][:1] if r["name"] else None)
    stats_tight = blocking_stats(registry, tight, "_entity")
    stats_loose = blocking_stats(registry, loose, "_entity")
    assert stats_tight.reduction_ratio > stats_loose.reduction_ratio
    assert stats_tight.pair_recall < stats_loose.pair_recall
    assert 0 < stats_loose.pair_recall <= 1.0


def test_matcher_scores_and_threshold(registry, candidates, matcher):
    result = matcher.match(registry, candidates)
    assert result.num_compared == len(candidates)
    assert all(0.0 <= s <= 1.0 + 1e-9 for s in result.scores.values())
    assert all(result.scores[pair] >= matcher.threshold for pair in result.matches)


def test_matcher_finds_most_duplicates_with_high_precision(
    registry, candidates, matcher
):
    result = matcher.match(registry, candidates)
    report = evaluate_linkage(registry, result.matches, "_entity")
    assert report.precision > 0.95
    assert report.recall > 0.6
    assert 0 < report.f1 <= 1.0


def test_group_recall_reflects_corruption_asymmetry(registry, candidates, matcher):
    """Blue records are corrupted 5x as often -> blue recall suffers."""
    result = matcher.match(registry, candidates)
    report = evaluate_linkage(registry, result.matches, "_entity", ["group"])
    assert report.group_recall[("blue",)] < report.group_recall[("green",)]
    assert report.recall_parity_difference > 0.03
    assert report.worst_group == ("blue",)


def test_cluster_matches_transitive_closure():
    clusters = cluster_matches(6, {(0, 1), (1, 2), (4, 5)})
    assert clusters == [[0, 1, 2], [3], [4, 5]]
    with pytest.raises(SpecificationError):
        cluster_matches(2, {(0, 5)})


def test_deduplicate_first_and_most_complete():
    schema = Schema([("name", "categorical"), ("zip", "categorical")])
    table = Table.from_rows(
        schema,
        [("ann", None), ("ann", "12345"), ("bob", "99999")],
    )
    matches = {(0, 1)}
    by_first = deduplicate(table, matches, keep="first")
    assert len(by_first) == 2
    assert by_first.row(0) == ("ann", None)
    by_complete = deduplicate(table, matches, keep="most_complete")
    assert by_complete.row(0) == ("ann", "12345")
    with pytest.raises(SpecificationError):
        deduplicate(table, matches, keep="newest")


def test_dedup_end_to_end_shrinks_registry(registry, candidates, matcher):
    result = matcher.match(registry, candidates)
    deduped = deduplicate(registry, result.matches)
    # 250 entities: perfect dedup would land at 250; we must land between
    # that and the raw 500, strictly below the raw size.
    assert 250 <= len(deduped) < 500


def test_evaluation_validations(registry):
    with pytest.raises(SpecificationError):
        evaluate_linkage(registry, {(0, 10_000)}, "_entity")


def test_matcher_validations():
    with pytest.raises(SpecificationError):
        RecordMatcher([], threshold=0.5)
    with pytest.raises(SpecificationError):
        RecordMatcher(
            [FieldComparator("name", levenshtein_similarity)], threshold=0.0
        )
    with pytest.raises(SpecificationError):
        FieldComparator("name", levenshtein_similarity, weight=0.0)


def test_registry_validations():
    with pytest.raises(SpecificationError):
        generate_person_registry(0)
    with pytest.raises(SpecificationError):
        generate_person_registry(5, group_shares={"purple": 1.0})
    with pytest.raises(SpecificationError):
        generate_person_registry(5, corruption_rates={"blue": 2.0})
