"""Tailoring requirement specs."""

import pytest

from respdi.errors import SpecificationError
from respdi.tailoring import CountSpec, MarginalCountSpec, RangeCountSpec


def test_count_spec_lifecycle():
    spec = CountSpec(("g", "r"), {("F", "b"): 2, ("M", "b"): 1, ("F", "w"): 0})
    state = spec.new_state()
    assert not spec.is_satisfied(state)
    assert spec.deficits(state) == {("F", "b"): 2, ("M", "b"): 1}
    assert spec.process(("F", "b"), state)  # useful
    assert not spec.process(("F", "w"), state)  # zero-requirement -> discard
    assert not spec.process(("M", "w"), state)  # unlisted -> discard
    assert spec.process(("F", "b"), state)
    assert spec.process(("M", "b"), state)
    assert spec.is_satisfied(state)
    assert not spec.process(("F", "b"), state)  # already satisfied


def test_count_spec_group_of():
    spec = CountSpec(("g", "r"), {("F", "b"): 1})
    assert spec.group_of({"g": "F", "r": "b", "x": 1}) == ("F", "b")
    with pytest.raises(SpecificationError, match="missing sensitive"):
        spec.group_of({"g": "F"})


def test_count_spec_useful_probability():
    spec = CountSpec(("g",), {("F",): 5, ("M",): 5})
    state = spec.new_state()
    dist = {("F",): 0.8, ("M",): 0.2}
    assert spec.useful_probability(dist, state) == pytest.approx(1.0)
    for _ in range(5):
        spec.process(("F",), state)
    assert spec.useful_probability(dist, state) == pytest.approx(0.2)


def test_count_spec_validations():
    with pytest.raises(SpecificationError):
        CountSpec((), {(): 1})
    with pytest.raises(SpecificationError):
        CountSpec(("g",), {})
    with pytest.raises(SpecificationError, match="wrong width|expected"):
        CountSpec(("g",), {("a", "b"): 1})
    with pytest.raises(SpecificationError, match="negative"):
        CountSpec(("g",), {("a",): -1})


def test_range_spec_accepts_between_lo_and_hi():
    spec = RangeCountSpec(("g",), {("F",): (2, 4), ("M",): (1, 2)})
    state = spec.new_state()
    assert spec.process(("F",), state)
    assert spec.process(("F",), state)
    assert not spec.is_satisfied(state)  # M still deficient
    assert spec.process(("M",), state)
    assert spec.is_satisfied(state)
    # Between lo and hi: still accepted (free representation).
    assert spec.process(("F",), state)
    assert spec.process(("F",), state)
    # At hi: discarded.
    assert not spec.process(("F",), state)
    assert spec.process(("M",), state)
    assert not spec.process(("M",), state)


def test_range_spec_useful_probability_targets_deficits():
    spec = RangeCountSpec(("g",), {("F",): (1, 10), ("M",): (1, 10)})
    state = spec.new_state()
    spec.process(("F",), state)
    dist = {("F",): 0.9, ("M",): 0.1}
    # F reached lo; only M progresses completion.
    assert spec.useful_probability(dist, state) == pytest.approx(0.1)


def test_range_spec_validations():
    with pytest.raises(SpecificationError):
        RangeCountSpec(("g",), {("F",): (3, 2)})
    with pytest.raises(SpecificationError):
        RangeCountSpec(("g",), {("F",): (-1, 2)})
    with pytest.raises(SpecificationError):
        RangeCountSpec(("g",), {})


def test_marginal_spec_counts_each_dimension():
    spec = MarginalCountSpec(
        ("g", "r"),
        {"g": {"F": 2, "M": 1}, "r": {"b": 2}},
    )
    state = spec.new_state()
    # A black woman serves both g=F and r=b.
    assert spec.process(("F", "b"), state)
    assert spec.deficits(state) == {("g", "F"): 1, ("g", "M"): 1, ("r", "b"): 1}
    assert spec.process(("M", "b"), state)
    assert spec.deficits(state) == {("g", "F"): 1}
    # A white woman serves only g=F.
    assert spec.process(("F", "w"), state)
    assert spec.is_satisfied(state)
    assert not spec.process(("F", "b"), state)


def test_marginal_spec_useful_probability():
    spec = MarginalCountSpec(("g", "r"), {"g": {"F": 1}})
    state = spec.new_state()
    dist = {("F", "b"): 0.3, ("F", "w"): 0.2, ("M", "b"): 0.5}
    assert spec.useful_probability(dist, state) == pytest.approx(0.5)


def test_marginal_spec_validations():
    with pytest.raises(SpecificationError, match="unknown attributes"):
        MarginalCountSpec(("g",), {"z": {"a": 1}})
    with pytest.raises(SpecificationError):
        MarginalCountSpec(("g",), {})
    with pytest.raises(SpecificationError, match="negative"):
        MarginalCountSpec(("g",), {"g": {"F": -2}})
