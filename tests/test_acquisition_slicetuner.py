"""Slice Tuner."""


import pytest

from respdi.acquisition import DataProvider, SliceTuner, fit_power_law
from respdi.datagen.population import default_health_population
from respdi.errors import EmptyInputError, SpecificationError
from respdi.table import Eq


def test_fit_power_law_recovers_parameters():
    a_true, b_true = 2.0, 0.5
    sizes = [10, 50, 100, 500, 1000]
    losses = [a_true * n ** (-b_true) for n in sizes]
    a, b = fit_power_law(sizes, losses)
    assert a == pytest.approx(a_true, rel=0.01)
    assert b == pytest.approx(b_true, abs=0.01)


def test_fit_power_law_single_point_fallback():
    a, b = fit_power_law([100], [0.5])
    assert b == 0.5
    assert a * 100 ** (-0.5) == pytest.approx(0.5)


def test_fit_power_law_clamps_positive_slope():
    # Loss increasing in n (noise) -> b clamped to 0 (flat curve).
    _, b = fit_power_law([10, 100], [0.1, 0.5])
    assert b == 0.0


def test_fit_power_law_empty():
    with pytest.raises(EmptyInputError):
        fit_power_law([0], [0.0])


@pytest.fixture(scope="module")
def setting():
    population = default_health_population(minority_fraction=0.25, group_signal=1.5)
    initial = population.sample_biased(
        200,
        {g: (0.45 if g[1] == "white" else 0.05) for g in population.groups},
        rng=31,
    )
    pool = population.sample(4000, rng=32)
    validation = population.sample(1500, rng=33)
    slices = {f"race={r}": Eq("race", r) for r in ("white", "black")}
    return initial, pool, validation, slices


FEATURES = ["x0", "x1", "x2", "x3"]


def test_curve_strategy_spends_more_than_proportional_on_starved_slice(setting):
    """Curve-based allocation follows projected loss reduction, which is
    steepest where data is scarce — so the starved minority slice must
    receive a larger share than a size-proportional allocation gives it."""
    initial, pool, validation, slices = setting
    curve = SliceTuner(slices, FEATURES, "y", validation, strategy="curve").run(
        DataProvider(pool, rng=34), initial, budget=600, rounds=4, rng=35
    )
    proportional = SliceTuner(
        slices, FEATURES, "y", validation, strategy="proportional"
    ).run(DataProvider(pool, rng=34), initial, budget=600, rounds=4, rng=35)
    assert curve.records_bought > 0

    def minority_share(result):
        total = sum(result.allocations.values())
        return result.allocations["race=black"] / total if total else 0.0

    assert minority_share(curve) > minority_share(proportional)


def test_loss_decreases_with_budget(setting):
    initial, pool, validation, slices = setting
    provider = DataProvider(pool, rng=36)
    tuner = SliceTuner(slices, FEATURES, "y", validation, strategy="curve")
    result = tuner.run(provider, initial, budget=800, rounds=4, rng=37)
    assert result.final_total_loss < result.total_loss_trajectory[0]


def test_uniform_and_proportional_strategies_run(setting):
    initial, pool, validation, slices = setting
    for strategy in ("uniform", "proportional"):
        provider = DataProvider(pool, rng=38)
        tuner = SliceTuner(slices, FEATURES, "y", validation, strategy=strategy)
        result = tuner.run(provider, initial, budget=300, rounds=3, rng=39)
        assert result.records_bought > 0
        assert len(result.total_loss_trajectory) >= 2


def test_uniform_splits_evenly(setting):
    initial, pool, validation, slices = setting
    provider = DataProvider(pool, rng=40)
    tuner = SliceTuner(slices, FEATURES, "y", validation, strategy="uniform")
    result = tuner.run(provider, initial, budget=400, rounds=2, rng=41)
    a = result.allocations["race=white"]
    b = result.allocations["race=black"]
    assert abs(a - b) <= max(4, 0.1 * (a + b))


def test_validations(setting):
    initial, pool, validation, slices = setting
    with pytest.raises(SpecificationError):
        SliceTuner({}, FEATURES, "y", validation)
    with pytest.raises(SpecificationError):
        SliceTuner(slices, FEATURES, "y", validation, strategy="alchemy")
    tuner = SliceTuner(slices, FEATURES, "y", validation)
    with pytest.raises(SpecificationError):
        tuner.run(DataProvider(pool, rng=42), initial, budget=0)
