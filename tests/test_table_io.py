"""CSV round-tripping."""

import pytest

from respdi.errors import SchemaError
from respdi.table import Schema, Table, read_csv, write_csv


def test_roundtrip_with_type_header(small_table, tmp_path):
    path = tmp_path / "t.csv"
    write_csv(small_table, path)
    back = read_csv(path)
    assert back.equals(small_table)


def test_roundtrip_with_explicit_schema(small_table, tmp_path):
    path = tmp_path / "t.csv"
    write_csv(small_table, path, include_types=False)
    back = read_csv(path, schema=small_table.schema)
    assert back.equals(small_table)


def test_read_without_types_or_schema_fails(small_table, tmp_path):
    path = tmp_path / "t.csv"
    write_csv(small_table, path, include_types=False)
    with pytest.raises(SchemaError, match="cannot infer"):
        read_csv(path)


def test_header_schema_mismatch(small_table, tmp_path):
    path = tmp_path / "t.csv"
    write_csv(small_table, path, include_types=False)
    wrong = Schema([("a", "numeric")])
    with pytest.raises(SchemaError, match="does not match"):
        read_csv(path, schema=wrong)


def test_missing_values_roundtrip(tmp_path):
    schema = Schema([("c", "categorical"), ("n", "numeric")])
    table = Table.from_rows(schema, [(None, None), ("x", 1.5)])
    path = tmp_path / "m.csv"
    write_csv(table, path)
    back = read_csv(path)
    assert back.equals(table)


def test_empty_table_roundtrip(tmp_path):
    schema = Schema([("c", "categorical")])
    table = Table.empty(schema)
    path = tmp_path / "e.csv"
    write_csv(table, path)
    back = read_csv(path)
    assert back.equals(table)
