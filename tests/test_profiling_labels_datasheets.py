"""Nutritional labels and datasheets."""

import pytest

from respdi.datagen import inject_mar
from respdi.errors import SpecificationError
from respdi.profiling import Datasheet, build_datasheet, build_nutritional_label
from respdi.profiling.datasheets import SECTIONS
from respdi.table import Schema, Table


def test_label_fields_populated(health_table):
    label = build_nutritional_label(
        health_table, ["gender", "race"], target_column="y",
        coverage_threshold=20,
    )
    assert label.profile.row_count == len(health_table)
    assert set(label.feature_target_correlation) == {"x0", "x1", "x2", "x3"}
    assert ("x0", "race") in label.feature_sensitive_association
    assert set(label.attribute_diversity) == {"gender", "race"}
    rendered = label.render()
    assert "feature informativeness" in rendered
    assert "rows:" in rendered


def test_label_flags_uncovered_groups(health_population):
    biased = health_population.sample_biased(
        400,
        {("F", "white"): 0.5, ("M", "white"): 0.47, ("F", "black"): 0.03},
        rng=5,
    )
    label = build_nutritional_label(
        biased, ["gender", "race"], target_column="y", coverage_threshold=30
    )
    assert label.uncovered_patterns
    assert "under-represented" in label.render()


def test_label_reports_group_missingness(health_table):
    dirty, _ = inject_mar(
        health_table, "x0", "race", {"black": 0.5}, rng=6
    )
    label = build_nutritional_label(dirty, ["race"], target_column="y")
    assert "x0" in label.group_missing_rates
    rates = label.group_missing_rates["x0"]
    assert rates[("black",)] > rates[("white",)]


def test_label_detects_sensitive_target_fd():
    schema = Schema([("race", "categorical"), ("y", "numeric")])
    rows = [("a", 1.0)] * 30 + [("b", 0.0)] * 30
    table = Table.from_rows(schema, rows)
    label = build_nutritional_label(table, ["race"], target_column="y")
    assert label.sensitive_target_fds
    assert "WARNING" in label.render()


def test_label_requires_sensitive_columns(health_table):
    with pytest.raises(SpecificationError):
        build_nutritional_label(health_table, [])


def test_datasheet_sections_and_rendering(health_table):
    sheet = build_datasheet(
        title="test data",
        table=health_table,
        motivation="unit testing",
        collection_process="synthetic sampling",
        recommended_uses=["testing"],
        known_limitations=["synthetic"],
    )
    rendered = sheet.render()
    assert "# Datasheet: test data" in rendered
    assert "## Motivation" in rendered
    assert "## Composition" in rendered
    assert "Known Limitations" in rendered
    assert f"rows: {len(health_table)}" in rendered


def test_datasheet_completeness_check(health_table):
    sheet = build_datasheet(
        "d", health_table, motivation="m", collection_process="c",
    )
    assert sheet.is_complete(
        ["motivation", "composition", "collection_process", "preprocessing"]
    )
    assert not sheet.is_complete(SECTIONS)  # uses/distribution/maintenance absent
    sheet.add_answer("uses", "What uses?", "testing")
    sheet.add_answer("distribution", "How distributed?", "in repo")
    sheet.add_answer("maintenance", "Who maintains?", "CI")
    assert sheet.is_complete(SECTIONS)


def test_datasheet_rejects_unknown_section():
    sheet = Datasheet(title="x")
    with pytest.raises(ValueError):
        sheet.add_answer("marketing", "q", "a")
