"""FaultPlan/fault_point semantics and fault drills for every subsystem.

Covers the tentpole contracts: deterministic occurrence-based
triggering, zero effect when no plan is active, exact
``parallel.retries``/``parallel.fallbacks`` ledgers under injected
worker faults, fsync-failure atomicity at the filesystem layer, stage
faults surfacing from the pipeline, and — the completeness gate — that
every registered injection point in :data:`respdi.faults.KNOWN_POINTS`
is actually crossed by the operations this suite runs.
"""

import errno
import os
import threading
import time

import pytest

from respdi import ResponsibleIntegrationPipeline, obs
from respdi._fsutil import atomic_write_text
from respdi.catalog import CatalogStore
from respdi.catalog.locking import writer_lock
from respdi.faults import (
    KNOWN_POINTS,
    DelayFault,
    FaultPlan,
    FsyncFailFault,
    InjectedFaultError,
    RaiseFault,
    active_plan,
    clear_plan,
    current_plan,
    fault_point,
    install_plan,
)
from respdi.parallel import ExecutionContext, map_chunked
from respdi.table import Schema, Table
from respdi.tailoring import CountSpec


@pytest.fixture(autouse=True)
def no_leftover_plan():
    clear_plan()
    yield
    clear_plan()


def _tiny_tables():
    schema = Schema([("key", "categorical"), ("value", "numeric")])
    out = {}
    for t in range(3):
        rows = [(f"k{t}_{i}", float(i) + t) for i in range(12)]
        out[f"table{t}"] = Table.from_rows(schema, rows)
    return out


# -- plan and point semantics --------------------------------------------------


def test_inactive_plan_is_a_no_op():
    assert current_plan() is None
    for _ in range(100):
        fault_point("nowhere.special", anything=1)  # must not raise or record
    assert current_plan() is None


def test_hits_and_trace_are_recorded_in_order():
    plan = FaultPlan(record_trace=True)
    with active_plan(plan) as active:
        assert active is plan and current_plan() is plan
        fault_point("a")
        fault_point("b")
        fault_point("a")
    assert current_plan() is None
    assert plan.count("a") == 2 and plan.count("b") == 1
    assert plan.count("never") == 0
    assert plan.trace == ["a", "b", "a"]


def test_one_shot_fault_fires_exactly_once():
    plan = FaultPlan().on("p", RaiseFault(), times=1)
    with active_plan(plan):
        with pytest.raises(InjectedFaultError, match="'p'"):
            fault_point("p")
        for _ in range(5):
            fault_point("p")  # exhausted: never fires again
    assert plan.count("p") == 6


def test_skip_and_every_nth_triggering():
    fired = []

    class Probe(RaiseFault):
        def fire(self, point, info):
            fired.append(info["n"])

    plan = FaultPlan().on("p", Probe(), skip=2, every=3, times=None)
    with active_plan(plan):
        for n in range(1, 12):
            fault_point("p", n=n)
    # Skip hits 1-2, then fire on every 3rd eligible hit: 3, 6, 9.
    assert fired == [3, 6, 9]


def test_when_predicate_filters_hits():
    plan = FaultPlan().on(
        "p", RaiseFault(), times=1, when=lambda info: info.get("idx") == 2
    )
    with active_plan(plan):
        fault_point("p", idx=0)
        fault_point("p", idx=1)
        with pytest.raises(InjectedFaultError):
            fault_point("p", idx=2)
        fault_point("p", idx=2)  # one-shot: already spent
    assert plan.count("p") == 4


def test_rule_counters_are_thread_safe():
    plan = FaultPlan().on("p", RaiseFault(), skip=10_000, times=None)
    errors = []

    def hammer():
        try:
            for _ in range(1000):
                fault_point("p")
        except BaseException as exc:  # pragma: no cover - only on bug
            errors.append(exc)

    with active_plan(plan):
        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    assert errors == []
    assert plan.count("p") == 4000


def test_install_and_clear_plan():
    plan = FaultPlan()
    install_plan(plan)
    assert current_plan() is plan
    clear_plan()
    assert current_plan() is None


def test_delay_fault_sleeps():
    plan = FaultPlan().on("p", DelayFault(0.05))
    start = time.perf_counter()
    with active_plan(plan):
        fault_point("p")
    assert time.perf_counter() - start >= 0.04


# -- filesystem layer ----------------------------------------------------------


def test_raise_at_tmp_written_leaves_destination_and_no_tmp(tmp_path):
    target = tmp_path / "artifact.json"
    atomic_write_text(target, "old")
    plan = FaultPlan().on("fsutil.tmp_written", RaiseFault())
    with active_plan(plan):
        with pytest.raises(InjectedFaultError):
            atomic_write_text(target, "new")
    assert target.read_text() == "old"
    assert list(tmp_path.glob(".*.tmp")) == []  # in-process cleanup ran
    atomic_write_text(target, "new")  # and the writer is reusable
    assert target.read_text() == "new"


def test_fsync_failure_during_add_leaves_catalog_consistent(tmp_path):
    tables = _tiny_tables()
    store = CatalogStore.build(
        tmp_path / "cat", {"table0": tables["table0"]}, rng=7, num_hashes=16
    )
    plan = FaultPlan().on("fsutil.fsync", FsyncFailFault())
    with active_plan(plan):
        with pytest.raises(OSError) as excinfo:
            store.add_table("table1", tables["table1"])
    assert excinfo.value.errno == errno.EIO
    # The failed add published nothing: reopen, verify clean, old contents.
    reopened = CatalogStore.open(store.directory)
    assert reopened.names == ["table0"]
    assert reopened.verify() == []
    # The writer recovers: the same add succeeds once the fault is gone.
    store.add_table("table1", tables["table1"])
    assert CatalogStore.open(store.directory).names == ["table0", "table1"]
    assert CatalogStore.open(store.directory).verify() == []


# -- parallel engine: exact retry/fallback ledgers -----------------------------


def _double(x):
    return 2 * x


def _chunk1(info):
    return info.get("chunk_index") == 1


def test_single_pool_fault_costs_one_retry_no_fallback():
    obs.enable()
    obs.reset()
    try:
        plan = FaultPlan().on("parallel.worker", RaiseFault(), times=1, when=_chunk1)
        context = ExecutionContext(backend="threads", n_jobs=2, chunksize=5)
        with active_plan(plan):
            result = map_chunked(_double, range(10), context)
        assert result == [2 * i for i in range(10)]
        counters = obs.global_registry().snapshot()["counters"]
        assert counters["parallel.retries"] == 1.0
        assert counters.get("parallel.fallbacks", 0.0) == 0.0
        assert counters["parallel.tasks"] == 2.0
        assert counters["parallel.items"] == 10.0
    finally:
        obs.disable()
        obs.reset()


def test_double_pool_fault_costs_one_retry_one_fallback():
    obs.enable()
    obs.reset()
    try:
        plan = FaultPlan().on("parallel.worker", RaiseFault(), times=2, when=_chunk1)
        context = ExecutionContext(backend="threads", n_jobs=2, chunksize=5)
        with active_plan(plan):
            result = map_chunked(_double, range(10), context)
        assert result == [2 * i for i in range(10)]
        counters = obs.global_registry().snapshot()["counters"]
        # Pool attempt fails, pool retry fails, serial fallback succeeds.
        assert counters["parallel.retries"] == 1.0
        assert counters["parallel.fallbacks"] == 1.0
        assert plan.count("parallel.worker") == 4  # chunk0 once, chunk1 thrice
    finally:
        obs.disable()
        obs.reset()


def test_persistent_fault_propagates_like_serial():
    plan = FaultPlan().on("parallel.worker", RaiseFault(), times=None, when=_chunk1)
    context = ExecutionContext(backend="threads", n_jobs=2, chunksize=5)
    with active_plan(plan):
        with pytest.raises(InjectedFaultError):
            map_chunked(_double, range(10), context)


def test_serial_backend_fault_raises_directly():
    obs.enable()
    obs.reset()
    try:
        plan = FaultPlan().on("parallel.worker", RaiseFault(), times=1, when=_chunk1)
        with active_plan(plan):
            with pytest.raises(InjectedFaultError):
                map_chunked(_double, range(10), ExecutionContext(chunksize=5))
        counters = obs.global_registry().snapshot()["counters"]
        assert counters.get("parallel.retries", 0.0) == 0.0  # serial never retries
    finally:
        obs.disable()
        obs.reset()


def test_hung_worker_times_out_then_recovers():
    obs.enable()
    obs.reset()
    try:
        plan = FaultPlan().on(
            "parallel.worker", DelayFault(0.5), times=1, when=_chunk1
        )
        context = ExecutionContext(
            backend="threads", n_jobs=2, chunksize=3, timeout=0.05
        )
        with active_plan(plan):
            result = map_chunked(_double, range(6), context)
        assert result == [2 * i for i in range(6)]
        counters = obs.global_registry().snapshot()["counters"]
        assert counters["parallel.retries"] >= 1.0
    finally:
        obs.disable()
        obs.reset()


def test_faulted_parallel_catalog_build_is_byte_identical_to_serial(tmp_path):
    """A transient worker fault must not change a single catalog byte."""
    tables = _tiny_tables()
    serial = CatalogStore.build(
        tmp_path / "serial", tables, rng=7, num_hashes=16
    )
    plan = FaultPlan().on("parallel.worker", RaiseFault(), times=1)
    context = ExecutionContext(backend="threads", n_jobs=2, chunksize=1)
    with active_plan(plan):
        faulted = CatalogStore.build(
            tmp_path / "faulted", tables, rng=7, num_hashes=16, context=context
        )
    assert plan.count("parallel.worker") >= 2  # fault actually exercised
    serial_files = sorted(
        p.relative_to(serial.directory)
        for p in serial.directory.rglob("*")
        if p.is_file()
    )
    faulted_files = sorted(
        p.relative_to(faulted.directory)
        for p in faulted.directory.rglob("*")
        if p.is_file()
    )
    assert serial_files == faulted_files
    for rel in serial_files:
        assert (serial.directory / rel).read_bytes() == (
            faulted.directory / rel
        ).read_bytes(), f"{rel} differs under a faulted parallel build"


# -- pipeline stages -----------------------------------------------------------


def _mini_pipeline_run():
    schema = Schema([("gender", "categorical"), ("x", "numeric")])
    rows = [("F", float(i)) for i in range(10)] + [
        ("M", float(i)) for i in range(10)
    ]
    table = Table.from_rows(schema, rows)
    # A matcher strength is configured so the run crosses the optional
    # pipeline.stage.resolve point (the completeness gate requires every
    # registered point to be exercised).
    pipeline = ResponsibleIntegrationPipeline(
        ("gender",), match_strength="normalized", match_keys=("gender",)
    )
    spec = CountSpec(("gender",), {("F",): 2, ("M",): 2})
    return pipeline.run({"src": table}, spec, rng=0)


def test_stage_fault_surfaces_instead_of_partial_result():
    plan = FaultPlan().on("pipeline.stage.document", RaiseFault())
    with active_plan(plan):
        with pytest.raises(InjectedFaultError, match="pipeline.stage.document"):
            _mini_pipeline_run()
    # With the plan cleared the same run completes and documents fully.
    result = _mini_pipeline_run()
    assert result.label is not None and result.datasheet is not None


# -- registry completeness -----------------------------------------------------


def test_every_known_point_is_exercised(tmp_path):
    """The KNOWN_POINTS registry matches reality: each point is crossed by
    a representative operation, and no operation crosses an unregistered
    point — so a newly wired (or renamed) point must be registered and
    covered before this suite passes."""
    import io
    import json

    from respdi.service import QueryService, serve

    tables = _tiny_tables()
    seen = set()

    def run_recorded(fn):
        plan = FaultPlan(record_trace=True)
        with active_plan(plan):
            fn()
        seen.update(plan.trace)

    catalog_dir = tmp_path / "cat"

    def catalog_lifecycle():
        store = CatalogStore.build(catalog_dir, tables, rng=7, num_hashes=16)
        store.refresh("table0", tables["table0"])  # hit: fingerprint match
        changed = Table.from_rows(
            Schema([("key", "categorical"), ("value", "numeric")]),
            [("zz", 9.0), ("yy", 8.0)],
        )
        store.refresh("table1", changed)  # rebuild: reads + rewrites entry
        store.remove_table("table2")
        CatalogStore.open(catalog_dir).index()

    def stale_lock_break():
        # A lock owned by a certainly-dead pid is broken on acquisition.
        lock = catalog_dir / "writer.lock"
        dead = 2
        while True:  # find a pid that does not exist
            try:
                os.kill(dead, 0)
            except ProcessLookupError:
                break
            except PermissionError:
                pass
            dead += 7919
        lock.write_text(str(dead))
        with writer_lock(catalog_dir, timeout=5.0):
            pass

    def parallel_map():
        context = ExecutionContext(backend="threads", n_jobs=2, chunksize=2)
        assert map_chunked(_double, range(8), context) == [
            2 * i for i in range(8)
        ]

    def service_lifecycle():
        # One serve session crosses every service.* point: startup,
        # snapshot pin, a cache miss (lookup + store), a cache hit, and
        # — served with a persistent sidecar — the pcache lookup, store,
        # and (via an explicit stale sweep) sweep points.
        from respdi.service import open_pcache

        service = QueryService(catalog_dir, cache_size=8)
        pcache = open_pcache(tmp_path / "pcache-points")
        request = json.dumps({"op": "keyword", "text": "table0", "k": 3})
        stream = io.StringIO(f"{request}\n{request}\n")
        serve(service, stream, io.StringIO(), pcache=pcache)
        pcache.sweep_stale(service.snapshot().generation)

    def sharded_lifecycle():
        # One sharded build + query crosses every shard.* point: routing
        # (table -> shard), the per-shard commit fan-out, and the
        # scatter-gather merge.
        from respdi.catalog.sharding import ShardedCatalogStore
        from respdi.service import KeywordQuery
        from respdi.service.sharded import ShardedQueryService

        store = ShardedCatalogStore.build(
            tmp_path / "shards", tables, num_shards=2, rng=7, num_hashes=16
        )
        ShardedQueryService(store).query(KeywordQuery(text="table0", k=3))

    def ingest_lifecycle():
        # One applying daemon cycle crosses every ingest.* point: the
        # cycle itself, the watcher's scan, and the writer's apply.
        from respdi.ingest import IngestDaemon
        from respdi.table import write_csv

        lake = tmp_path / "ingest-lake"
        lake.mkdir()
        write_csv(tables["table0"], lake / "table0.csv")
        ingest_dir = tmp_path / "ingest-cat"
        CatalogStore.build(
            ingest_dir, {"table1": tables["table1"]}, rng=7, num_hashes=16
        )
        result = IngestDaemon(ingest_dir, lake).run_cycle()
        assert result.added == 1 and result.removed == 1

    run_recorded(catalog_lifecycle)
    run_recorded(stale_lock_break)
    run_recorded(ingest_lifecycle)
    run_recorded(parallel_map)
    run_recorded(_mini_pipeline_run)
    run_recorded(service_lifecycle)
    run_recorded(sharded_lifecycle)

    # Failure messages spell out the *sorted names* on both sides of the
    # diff — a bare count (or an unordered set repr) makes triaging a
    # registry drift needlessly slow.
    missing = sorted(KNOWN_POINTS - seen)
    assert missing == [], (
        f"registered points never exercised: {', '.join(missing)}"
    )
    unregistered = sorted(seen - KNOWN_POINTS)
    assert unregistered == [], (
        f"points crossed but not in KNOWN_POINTS: {', '.join(unregistered)}"
    )
