"""Join-sampling baselines — including the strawman's bias, demonstrated."""

import numpy as np
import pytest

from respdi.errors import SpecificationError
from respdi.sampling import full_join, join_then_sample, sample_then_join
from respdi.table import Schema, Table


def skewed_tables(seed=0):
    """One heavy key (fanout 40x40) and many light keys (1x1)."""
    rng = np.random.default_rng(seed)
    left_rows = [("hot", float(rng.normal()))] * 40 + [
        (f"cold{i}", float(rng.normal())) for i in range(60)
    ]
    right_rows = [("hot", float(rng.normal()))] * 40 + [
        (f"cold{i}", float(rng.normal())) for i in range(60)
    ]
    schema_l = Schema([("k", "categorical"), ("a", "numeric")])
    schema_r = Schema([("k", "categorical"), ("b", "numeric")])
    return (
        Table.from_rows(schema_l, left_rows),
        Table.from_rows(schema_r, right_rows),
    )


def test_full_join_size():
    left, right = skewed_tables()
    joined = full_join(left, right, ["k"])
    assert len(joined) == 40 * 40 + 60


def test_join_then_sample_is_unbiased():
    left, right = skewed_tables()
    sample = join_then_sample(left, right, ["k"], n=4000, rng=1)
    hot_share = sum(1 for v in sample.column("k") if v == "hot") / len(sample)
    true_share = 1600 / 1660
    assert hot_share == pytest.approx(true_share, abs=0.02)


def test_sample_then_join_underrepresents_heavy_keys():
    left, right = skewed_tables()
    # With 30% per-side sampling, the hot key's share of the sampled join
    # stays near its true share ONLY if sampling were unbiased; the
    # strawman instead skews the *size* and correlation structure.  The
    # robust observable bias: expected output size != fraction^2 * |join|
    # contributions uniformly across keys — cold keys nearly vanish.
    out = sample_then_join(left, right, ["k"], 0.3, 0.3, rng=2)
    cold = sum(1 for v in out.column("k") if v != "hot")
    # Each cold key survives with probability 0.09; of 60 keys only a few.
    assert cold < 20


def test_sample_then_join_result_tuples_are_correlated():
    """Tuples sharing a sampled base row are correlated: the number of
    distinct left rows in the output is far below the output size for a
    high-fanout key."""
    left, right = skewed_tables()
    out = sample_then_join(left, right, ["k"], 0.3, 0.3, rng=3)
    hot = out.filter_mask(np.array([v == "hot" for v in out.column("k")]))
    if len(hot) > 0:
        distinct_left_values = len(set(hot.column("a")))
        assert distinct_left_values <= 0.5 * len(hot) + 1


def test_validations():
    left, right = skewed_tables()
    with pytest.raises(SpecificationError):
        sample_then_join(left, right, ["k"], 0.0, 0.5)
    empty_l = Table.empty(left.schema)
    with pytest.raises(SpecificationError, match="empty"):
        join_then_sample(empty_l, right, ["k"], 5)
