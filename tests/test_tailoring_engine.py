"""Tailoring engine + policies: cost ordering, regimes, extensions."""

import numpy as np
import pytest

from respdi.datagen import make_source_tables, skewed_group_distributions
from respdi.datagen.sources import overlapping_source_tables
from respdi.errors import BudgetExceededError, EmptyInputError, SpecificationError
from respdi.table import Table
from respdi.tailoring import (
    CountSpec,
    EpsilonGreedyPolicy,
    ExploitPolicy,
    MarginalCountSpec,
    OverlapAwareRatioCollPolicy,
    RandomPolicy,
    RangeCountSpec,
    RatioCollPolicy,
    RoundRobinPolicy,
    TableSource,
    UCBPolicy,
    tailor,
)


def two_sources(health_population, minority_heavy_fraction=0.6, rows=3000):
    """Source 0 is minority-heavy, source 1 follows the population."""
    base = health_population.group_distribution()
    heavy = {
        g: (minority_heavy_fraction / 2 if g[1] == "black" else (1 - minority_heavy_fraction) / 2)
        for g in base
    }
    tables = [
        health_population.sample_biased(rows, heavy, rng=10),
        health_population.sample_biased(rows, base, rng=11),
    ]
    return [
        TableSource("minority_heavy", tables[0], cost=1.0),
        TableSource("general", tables[1], cost=1.0),
    ]


@pytest.fixture
def spec(health_population):
    return CountSpec(("gender", "race"), {g: 25 for g in health_population.groups})


def test_table_source_draw_and_distribution(health_table, rng):
    source = TableSource("s", health_table, cost=2.0)
    row = source.draw(rng)
    assert "gender" in row and "race" in row
    dist = source.group_distribution(["gender", "race"])
    assert sum(dist.values()) == pytest.approx(1.0)
    hidden = TableSource("h", health_table, publish_distribution=False)
    assert hidden.group_distribution(["gender", "race"]) is None


def test_table_source_validations(health_table):
    with pytest.raises(SpecificationError):
        TableSource("s", health_table, cost=0.0)
    empty = Table.empty(health_table.schema)
    with pytest.raises(EmptyInputError):
        TableSource("s", empty)


def test_ratio_coll_beats_random(health_population):
    """The DT paper's headline regime: a rare minority, mostly-majority
    sources plus one specialized source.  RatioColl should beat random
    source selection clearly (averaged over seeds)."""
    from respdi.datagen.population import default_health_population

    population = default_health_population(minority_fraction=0.05)
    base = population.group_distribution()
    dists = skewed_group_distributions(
        base, 4, concentration=3.0, specialized={0: ("F", "black")}, rng=40
    )
    tables = make_source_tables(population, dists, 2500, rng=41)
    sources = [TableSource(f"s{i}", t) for i, t in enumerate(tables)]
    spec = CountSpec(("gender", "race"), {g: 20 for g in population.groups})
    smart_costs, naive_costs = [], []
    for seed in (1, 2, 3):
        smart = tailor(sources, spec, RatioCollPolicy(), rng=seed)
        naive = tailor(sources, spec, RandomPolicy(), rng=seed)
        assert smart.satisfied and naive.satisfied
        smart_costs.append(smart.total_cost)
        naive_costs.append(naive.total_cost)
    assert np.mean(smart_costs) < 0.8 * np.mean(naive_costs)


def test_ratio_coll_exploits_specialized_source(health_population, spec):
    sources = two_sources(health_population)
    result = tailor(sources, spec, RatioCollPolicy(), rng=2)
    # Once the majority deficits close, minority draws dominate; the
    # minority-heavy source must receive a meaningful share of pulls.
    assert result.pulls[0] > 0.3 * result.steps


def test_collected_rows_exactly_match_spec(health_population, spec):
    sources = two_sources(health_population)
    result = tailor(sources, spec, RatioCollPolicy(), rng=3)
    table = result.collected_table(health_population.schema())
    counts = table.group_counts(["gender", "race"])
    assert all(v == 25 for v in counts.values())


def test_ucb_works_without_distributions(health_population, spec):
    base = health_population.group_distribution()
    tables = make_source_tables(
        health_population,
        skewed_group_distributions(base, 3, concentration=2.0, rng=4),
        2000,
        rng=5,
    )
    hidden = [
        TableSource(f"s{i}", t, publish_distribution=False)
        for i, t in enumerate(tables)
    ]
    result = tailor(hidden, spec, UCBPolicy(), rng=6)
    assert result.satisfied
    # RatioColl must refuse on hidden distributions.
    with pytest.raises(SpecificationError, match="does not publish"):
        tailor(hidden, spec, RatioCollPolicy(), rng=7)


def test_ucb_beats_round_robin_with_useless_sources(health_population):
    """When most sources carry no minority rows, learning wins."""
    spec = CountSpec(("gender", "race"), {("F", "black"): 30})
    base = health_population.group_distribution()
    useless_dist = {g: (0.5 if g[1] == "white" else 0.0) for g in base}
    useful_dist = {g: 0.25 for g in base}
    tables = [
        health_population.sample_biased(2000, useless_dist, rng=20),
        health_population.sample_biased(2000, useless_dist, rng=21),
        health_population.sample_biased(2000, useless_dist, rng=22),
        health_population.sample_biased(2000, useful_dist, rng=23),
    ]
    hidden = [
        TableSource(f"s{i}", t, publish_distribution=False)
        for i, t in enumerate(tables)
    ]
    ucb = tailor(hidden, spec, UCBPolicy(), rng=8)
    rr = tailor(hidden, spec, RoundRobinPolicy(), rng=8)
    assert ucb.satisfied and rr.satisfied
    assert ucb.total_cost < rr.total_cost


def test_epsilon_greedy_and_exploit_run(health_population, spec):
    sources = two_sources(health_population)
    for policy in (EpsilonGreedyPolicy(0.2), ExploitPolicy()):
        result = tailor(sources, spec, policy, rng=9)
        assert result.satisfied


def test_cost_weighting_prefers_cheap_source(health_population):
    base = health_population.group_distribution()
    table = health_population.sample_biased(3000, base, rng=12)
    cheap = TableSource("cheap", table, cost=1.0)
    pricey = TableSource("pricey", table, cost=10.0)
    spec = CountSpec(("gender", "race"), {g: 10 for g in health_population.groups})
    result = tailor([pricey, cheap], spec, RatioCollPolicy(), rng=13)
    assert result.pulls[1] == result.steps  # identical content: never pay 10x


def test_budget_stops_and_reports_deficits(health_population, spec):
    sources = two_sources(health_population)
    result = tailor(sources, spec, RatioCollPolicy(), budget=10, rng=14)
    assert not result.satisfied
    assert result.total_cost >= 10
    assert result.deficits
    engine_raises = pytest.raises(BudgetExceededError)
    from respdi.tailoring import TailoringEngine

    with engine_raises:
        TailoringEngine(sources, spec, RatioCollPolicy()).run(
            budget=10, rng=15, raise_on_budget=True
        )


def test_max_steps_cap(health_population, spec):
    sources = two_sources(health_population)
    result = tailor(sources, spec, RatioCollPolicy(), max_steps=5, rng=16)
    assert result.steps == 5 and not result.satisfied


def test_trajectory_is_monotone(health_population, spec):
    sources = two_sources(health_population)
    result = tailor(sources, spec, RatioCollPolicy(), rng=17)
    costs = [c for c, _ in result.cost_trajectory]
    rows = [r for _, r in result.cost_trajectory]
    assert costs == sorted(costs)
    assert rows == sorted(rows)
    assert rows[-1] == len(result.rows)


def test_range_spec_collects_into_range(health_population):
    sources = two_sources(health_population)
    spec = RangeCountSpec(
        ("gender", "race"), {g: (10, 20) for g in health_population.groups}
    )
    result = tailor(sources, spec, RatioCollPolicy(), rng=18)
    assert result.satisfied
    table = result.collected_table(health_population.schema())
    for count in table.group_counts(["gender", "race"]).values():
        assert 10 <= count <= 20


def test_marginal_spec_end_to_end(health_population):
    sources = two_sources(health_population)
    spec = MarginalCountSpec(
        ("gender", "race"),
        {"gender": {"F": 40, "M": 40}, "race": {"white": 40, "black": 40}},
    )
    result = tailor(sources, spec, RatioCollPolicy(), rng=19)
    assert result.satisfied
    table = result.collected_table(health_population.schema())
    assert table.value_counts("gender")["F"] >= 40
    assert table.value_counts("race")["black"] >= 40


def test_overlap_aware_policy_at_least_as_good(health_population):
    base = health_population.group_distribution()
    dists = skewed_group_distributions(base, 3, concentration=4.0, rng=30)
    tables, _ = overlapping_source_tables(
        health_population, dists, 600, overlap=0.6, rng=31
    )
    sources = [TableSource(f"s{i}", t) for i, t in enumerate(tables)]
    spec = CountSpec(("gender", "race"), {g: 15 for g in health_population.groups})
    plain = tailor(
        sources, spec, RatioCollPolicy(), rng=32, dedupe_column="_id",
        max_steps=30000,
    )
    aware = tailor(
        sources, spec, OverlapAwareRatioCollPolicy(), rng=32,
        dedupe_column="_id", max_steps=30000,
    )
    assert aware.satisfied
    assert sum(aware.duplicates) <= sum(plain.duplicates) * 1.5 + 10


def test_duplicates_never_collected(health_population):
    base = health_population.group_distribution()
    tables, _ = overlapping_source_tables(
        health_population, [base, base], 300, overlap=0.5, rng=33
    )
    sources = [TableSource(f"s{i}", t) for i, t in enumerate(tables)]
    spec = CountSpec(("gender", "race"), {g: 10 for g in health_population.groups})
    result = tailor(
        sources, spec, RandomPolicy(), rng=34, dedupe_column="_id",
        max_steps=20000,
    )
    ids = [row["_id"] for row in result.rows]
    assert len(ids) == len(set(ids))


def test_engine_validations(health_population, spec):
    with pytest.raises(SpecificationError):
        tailor([], spec, RandomPolicy())
    sources = two_sources(health_population)
    with pytest.raises(SpecificationError):
        tailor(sources, spec, RandomPolicy(), max_steps=0)
