"""Matcher strength views: interface, nesting, canonicalization, wiring."""

import pytest

from respdi.datagen.corruption import NameNoiseModel, typo_edit
from respdi.datagen.duplicates import generate_gold_registry, gold_pairs
from respdi.errors import SpecificationError
from respdi.linkage import (
    STRENGTH_ORDER,
    CanonicalSimilarity,
    ExactView,
    FuzzyView,
    NormalizedView,
    build_view,
    canonicalize,
    jaro_winkler_similarity,
)
from respdi.parallel import ExecutionContext
from respdi.table import ColumnType, Schema, Table

SCHEMA = Schema([("name", ColumnType.CATEGORICAL), ("city", ColumnType.CATEGORICAL)])


def _table(names, cities=None):
    cities = cities or ["x"] * len(names)
    return Table.from_rows(SCHEMA, list(zip(names, cities)))


# -- canonicalize --------------------------------------------------------------


def test_canonicalize_formatting_variants_collapse():
    assert canonicalize("  Núñez, Ana ") == "ana nunez"
    assert canonicalize("ANA NUNEZ") == "ana nunez"
    assert canonicalize("nunez,ana") == "ana nunez"
    assert canonicalize("Ana  .  Nunez") == "ana nunez"


def test_canonicalize_none_and_empty():
    assert canonicalize(None) is None
    assert canonicalize("") == ""
    assert canonicalize("   ") == ""
    assert canonicalize("!!!") == ""


def test_canonicalize_is_a_function_of_content():
    # Distinct content stays distinct: canonicalization never merges
    # genuinely different names.
    assert canonicalize("ana nunez") != canonicalize("ana nunes")


def test_canonical_similarity_wrapper():
    sim = CanonicalSimilarity(jaro_winkler_similarity)
    assert sim("Núñez, Ana", "ana nunez") == 1.0
    assert sim(None, "ana") == 0.0
    assert sim("ana", None) == 0.0
    raw = sim("Smithe, John", "jon smith")
    assert 0.0 < raw < 1.0


# -- the three strengths -------------------------------------------------------


def test_exact_links_only_byte_equal_keys():
    table = _table(["Ann Lee", "Ann Lee", "ann lee", "Lee, Ann"])
    links = ExactView(["name"]).link(table)
    assert links.pairs == frozenset({(0, 1)})
    assert links.num_clusters == 3


def test_normalized_links_formatting_variants():
    table = _table(["Ann Lee", "ann  lee", "Lee, Ann", "ANN LEE", "bo kim"])
    links = NormalizedView(["name"]).link(table)
    assert links.pairs == frozenset({(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)})
    assert links.num_clusters == 2


def test_fuzzy_links_typos_too():
    table = _table(["annabellina garcia", "annabelina garcia", "ann garcia x"])
    links = FuzzyView(["name"], threshold=0.9).link(table)
    assert (0, 1) in links.pairs  # single-char typo recovered


def test_missing_keys_never_link():
    table = _table([None, None, "ann"])
    for view in (ExactView(["name"]), NormalizedView(["name"]),
                 FuzzyView(["name"])):
        assert view.link(table).pairs == frozenset()


def test_multi_column_keys():
    table = Table.from_rows(
        SCHEMA, [("Ann Lee", "Oslo"), ("ann lee", "OSLO"), ("ann lee", "Bergen")]
    )
    links = NormalizedView(["name", "city"]).link(table)
    assert links.pairs == frozenset({(0, 1)})


# -- nesting -------------------------------------------------------------------


def test_link_sets_nested_on_generated_gold_registry():
    reg = generate_gold_registry(
        80, duplicates_per_entity=2, rng=13, group_intensity={"green": 1.5}
    )
    previous = frozenset()
    for strength in STRENGTH_ORDER:
        links = build_view(strength, ["name"]).link(reg.table)
        assert previous <= links.pairs, f"{strength} dropped weaker links"
        previous = links.pairs


def test_fuzzy_contains_normalized_even_at_threshold_one():
    # Canonical-equality edges are seeded, not scored, so the containment
    # holds even when the threshold rejects every scored pair.
    table = _table(["Ann Lee", "Lee, Ann", "Ann  LEE", "bob kim"])
    normalized = NormalizedView(["name"]).link(table)
    fuzzy = FuzzyView(["name"], threshold=1.0).link(table)
    assert normalized.pairs <= fuzzy.pairs


# -- interface / factory -------------------------------------------------------


def test_build_view_routes_all_strengths():
    assert isinstance(build_view("exact", ["name"]), ExactView)
    assert isinstance(build_view("normalized", ["name"]), NormalizedView)
    view = build_view("fuzzy", ["name"], threshold=0.9, window=4)
    assert isinstance(view, FuzzyView)
    assert view.threshold == 0.9 and view.window == 4


def test_build_view_rejects_unknown_strength():
    with pytest.raises(SpecificationError):
        build_view("psychic", ["name"])


def test_views_require_key_columns():
    with pytest.raises(SpecificationError):
        ExactView([])
    with pytest.raises(SpecificationError):
        FuzzyView(["name"], window=1)


def test_link_requires_columns_present():
    from respdi.errors import SchemaError

    with pytest.raises(SchemaError):
        ExactView(["missing"]).link(_table(["a"]))


def test_matcher_links_render_shape():
    links = NormalizedView(["name"]).link(_table(["a b", "b a", "c"]))
    assert links.sorted_pairs() == [(0, 1)]
    assert links.num_links == 1
    assert links.n_records == 3


# -- parallel identity ---------------------------------------------------------


def test_fuzzy_serial_and_threads_backends_agree():
    reg = generate_gold_registry(60, duplicates_per_entity=2, rng=5)
    view = FuzzyView(["name"])
    serial = view.link(reg.table, context=ExecutionContext(backend="serial"))
    threaded = view.link(
        reg.table, context=ExecutionContext(backend="threads", n_jobs=4)
    )
    assert serial.pairs == threaded.pairs
    assert serial.clusters == threaded.clusters


# -- noise model / gold emission ----------------------------------------------


def test_typo_edit_changes_string_deterministically():
    import numpy as np

    a = typo_edit("alexandria", np.random.default_rng(3))
    b = typo_edit("alexandria", np.random.default_rng(3))
    assert a == b != "alexandria"


def test_noise_model_rate_zero_is_identity():
    import numpy as np

    model = NameNoiseModel().scaled(0.0)
    assert model.corrupt("Ann Lee", np.random.default_rng(0)) == "Ann Lee"


def test_noise_model_scaled_clamps_and_validates():
    model = NameNoiseModel().scaled(100.0)
    assert model.typo_rate <= 1.0
    with pytest.raises(SpecificationError):
        NameNoiseModel(typo_rate=1.5)


def test_gold_registry_pairs_match_entity_column():
    reg = generate_gold_registry(20, duplicates_per_entity=1, rng=2)
    assert reg.pairs == frozenset(gold_pairs(reg.table))
    assert reg.n_records == 40
    assert reg.n_pairs == 20


# -- pipeline wiring -----------------------------------------------------------


def test_pipeline_resolve_stage_deduplicates():
    from respdi.pipeline import ResponsibleIntegrationPipeline
    from respdi.tailoring import CountSpec

    reg = generate_gold_registry(40, duplicates_per_entity=1, rng=9)
    spec = CountSpec(("group",), {("blue",): 25, ("green",): 25})
    pipeline = ResponsibleIntegrationPipeline(
        ("group",), match_strength="normalized", match_keys=("name",)
    )
    result = pipeline.run({"registry": reg.table}, spec, rng=1)
    assert "resolve" in dict(result.stage_timings)
    assert len(result.table) <= 50
    assert any("matcher view" in note for note in result.provenance)


def test_pipeline_match_strength_requires_keys():
    from respdi.pipeline import ResponsibleIntegrationPipeline

    with pytest.raises(SpecificationError):
        ResponsibleIntegrationPipeline(("group",), match_strength="exact")
