"""Cross-process determinism: signatures and catalog bytes are seed-stable.

MinHash value hashing and all catalog checksums are built on blake2b,
not Python's randomized ``hash()``, so two processes with *different*
``PYTHONHASHSEED`` values must produce byte-identical signatures,
``.npz`` files, and manifest checksums.  Anything less would break the
catalog's integrity story (a checksum that depends on the process that
wrote it is not a checksum).
"""

import json
import os
import subprocess
import sys
from pathlib import Path

SRC = str(Path(__file__).resolve().parent.parent / "src")

_SCRIPT = r"""
import hashlib, json, sys
from pathlib import Path

from respdi.catalog import CatalogStore
from respdi.datagen import LakeSpec, generate_lake
from respdi.discovery import MinHasher

out_dir = Path(sys.argv[1])

hasher = MinHasher(32, rng=5)
signature = hasher.signature(["a", "b", ("tuple", 1), 3, 2.5])
lake = generate_lake(LakeSpec(n_distractors=3), rng=11)
store = CatalogStore.build(out_dir / "cat", dict(lake.tables), rng=7)

checksums = {}
for path in sorted((out_dir / "cat").rglob("*")):
    if path.is_file() and path.name != "writer.lock":
        checksums[str(path.relative_to(out_dir / "cat"))] = hashlib.blake2b(
            path.read_bytes(), digest_size=16
        ).hexdigest()

print(json.dumps({
    "signature": signature.values.tolist(),
    "fingerprint": hasher.fingerprint,
    "checksums": checksums,
}))
"""


def _run_catalog_build(tmp_path: Path, hash_seed: str) -> dict:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    out_dir = tmp_path / f"seed{hash_seed}"
    out_dir.mkdir()
    result = subprocess.run(
        [sys.executable, "-c", _SCRIPT, str(out_dir)],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(result.stdout)


def test_catalog_bytes_identical_across_hash_seeds(tmp_path):
    first = _run_catalog_build(tmp_path, "1")
    second = _run_catalog_build(tmp_path, "2")

    assert first["signature"] == second["signature"]
    assert first["fingerprint"] == second["fingerprint"]
    assert first["checksums"].keys() == second["checksums"].keys()
    mismatched = [
        name
        for name in first["checksums"]
        if first["checksums"][name] != second["checksums"][name]
    ]
    assert mismatched == [], f"files differ across PYTHONHASHSEED: {mismatched}"
    # Sanity: the build actually produced catalog content.
    assert any(name.startswith("entries/") for name in first["checksums"])
    assert "MANIFEST.json" in first["checksums"]
