"""Serve differential suite: every transport × cache tier × layout agrees.

The serve path's central claim, enforced byte-for-byte: for the same
request stream against the same committed tables, the rendered results
are identical across {stdin loop, socket server} × {no cache, memory
cache, persistent cache} × {plain catalog, 4-shard catalog} — twelve
configurations, one answer.  Within a layout the *entire* response line
(generation included) must match; across layouts the ``results``
payloads must match (the generation field legitimately differs: an int
for a plain store, a vector for shards).

Plus the restart case the persistent tier exists for: a server restarted
over the same sidecar answers every request byte-identically *without a
single recompute* (zero new stores).
"""

import io
import json
import socket

import pytest

from respdi.catalog import CatalogStore
from respdi.catalog.sharding import ShardedCatalogStore
from respdi.service import (
    QueryService,
    SocketQueryServer,
    open_pcache,
    serve,
)
from respdi.service.sharded import ShardedQueryService
from respdi.table import Schema, Table

SCHEMA = Schema([("key", "categorical"), ("value", "numeric")])
OPTS = dict(rng=7, num_hashes=16, sketch_size=16)

REQUESTS = [
    {"op": "keyword", "text": "alpha", "k": 4},
    {"op": "join", "values": ["a_1", "b_2", "g_3"], "k": 4},
    {"op": "containment", "values": ["a_1", "a_2"], "threshold": 0.1, "k": 4},
    {"op": "keyword", "text": "alpha", "k": 4},  # repeat: the hit path
]


def _table(tag, n=8):
    rows = [(f"{tag}_{i}", float(i)) for i in range(n)]
    return Table.from_rows(SCHEMA, rows)


TABLES = {"alpha": _table("a"), "beta": _table("b"), "gamma": _table("g")}


@pytest.fixture(scope="module")
def catalogs(tmp_path_factory):
    root = tmp_path_factory.mktemp("serve-diff")
    CatalogStore.build(root / "plain", TABLES, **OPTS)
    ShardedCatalogStore.build(root / "sharded", TABLES, num_shards=4, **OPTS)
    return {"plain": root / "plain", "sharded": root / "sharded"}


def _service(layout, directory, cache_size):
    cls = ShardedQueryService if layout == "sharded" else QueryService
    return cls(directory, cache_size=cache_size)


def _via_stdin(service, pcache):
    stream = io.StringIO(
        "".join(json.dumps(request) + "\n" for request in REQUESTS)
    )
    out = io.StringIO()
    serve(service, stream, out, pcache=pcache)
    return out.getvalue().splitlines()


def _via_socket(service, pcache):
    server = SocketQueryServer(service, pcache=pcache)
    server.start()
    try:
        with socket.create_connection(server.address, timeout=10) as conn:
            reader = conn.makefile("r", encoding="utf-8", newline="\n")
            writer = conn.makefile("w", encoding="utf-8", newline="\n")
            lines = []
            for request in REQUESTS:
                writer.write(json.dumps(request) + "\n")
                writer.flush()
                lines.append(reader.readline().rstrip("\n"))
            return lines
    finally:
        server.stop()


def _results_only(lines):
    return [
        json.dumps(json.loads(line)["results"], sort_keys=True)
        for line in lines
    ]


def test_twelve_way_response_identity(catalogs, tmp_path):
    responses = {}
    for layout, directory in catalogs.items():
        for tier in ("nocache", "memory", "pcache"):
            cache_size = 32 if tier == "memory" else 0
            for transport, drive in (
                ("stdin", _via_stdin), ("socket", _via_socket)
            ):
                pcache = None
                if tier == "pcache":
                    pcache = open_pcache(
                        directory,
                        directory=tmp_path / f"pc-{layout}-{transport}",
                    )
                service = _service(layout, directory, cache_size)
                responses[(layout, tier, transport)] = drive(service, pcache)

    assert len(responses) == 12
    for lines in responses.values():
        assert len(lines) == len(REQUESTS)
        assert all(json.loads(line)["ok"] for line in lines)

    # Within a layout: full-line identity across tiers and transports.
    for layout in ("plain", "sharded"):
        per_layout = {
            key: lines
            for key, lines in responses.items()
            if key[0] == layout
        }
        reference_key = (layout, "nocache", "stdin")
        reference = per_layout[reference_key]
        for key, lines in per_layout.items():
            assert lines == reference, (
                f"{key} diverged from {reference_key}"
            )

    # Across layouts: results identity (generation shapes differ).
    plain = _results_only(responses[("plain", "nocache", "stdin")])
    sharded = _results_only(responses[("sharded", "nocache", "stdin")])
    assert plain == sharded


@pytest.mark.parametrize("layout", ["plain", "sharded"])
def test_restart_warm_starts_from_sidecar_with_zero_recompute(
    catalogs, tmp_path, layout
):
    directory = catalogs[layout]
    sidecar = tmp_path / f"sidecar-{layout}"

    first_pcache = open_pcache(directory, directory=sidecar)
    first = _via_socket(_service(layout, directory, 0), first_pcache)
    assert first_pcache.stats()["stores"] == 3  # three distinct queries

    # "Restart": brand-new service and pcache objects over the same disk.
    second_pcache = open_pcache(directory, directory=sidecar)
    second = _via_socket(_service(layout, directory, 0), second_pcache)
    assert second == first  # byte-identical responses after restart
    stats = second_pcache.stats()
    assert stats["stores"] == 0  # warm start: nothing recomputed
    assert stats["hits"] == len(REQUESTS) and stats["misses"] == 0


def test_stdin_and_socket_agree_after_reshard_in_place(tmp_path):
    """Composes the two tentpole satellites: an in-place reshard under a
    serving directory path, then both transports against the swapped-in
    sharded catalog — identical results to the pre-reshard plain ones."""
    from respdi.catalog.sharding import reshard

    directory = tmp_path / "cat"
    CatalogStore.build(directory, TABLES, **OPTS)
    before = _results_only(_via_stdin(QueryService(directory, cache_size=0), None))

    store = reshard(directory, num_shards=4, in_place=True)
    assert store.directory == directory and store.num_shards == 4

    after_stdin = _via_stdin(ShardedQueryService(directory), None)
    after_socket = _via_socket(ShardedQueryService(directory), None)
    assert _results_only(after_stdin) == before
    assert [json.loads(l)["results"] for l in after_stdin] == [
        json.loads(l)["results"] for l in after_socket
    ]
