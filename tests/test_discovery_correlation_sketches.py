"""Correlation sketches for join-correlation estimation."""

import numpy as np
import pytest

from respdi.discovery import CorrelationSketch
from respdi.errors import EmptyInputError, SpecificationError


def correlated_columns(rho, n=500, seed=0):
    rng = np.random.default_rng(seed)
    keys = [f"k{i}" for i in range(n)]
    x = rng.normal(size=n)
    y = rho * x + np.sqrt(1 - rho**2) * rng.normal(size=n)
    return keys, x, y


def test_estimates_track_true_correlation():
    for rho in (0.9, 0.5, 0.0):
        keys, x, y = correlated_columns(rho, seed=int(rho * 10))
        a = CorrelationSketch.build(keys, x, size=128)
        b = CorrelationSketch.build(keys, y, size=128)
        assert a.estimate_pearson(b) == pytest.approx(rho, abs=0.25)


def test_spearman_estimate():
    keys, x, _ = correlated_columns(1.0)
    a = CorrelationSketch.build(keys, x, size=128)
    b = CorrelationSketch.build(keys, [v**3 for v in x], size=128)
    assert a.estimate_spearman(b) == pytest.approx(1.0, abs=0.05)


def test_duplicate_keys_aggregated_by_mean():
    sketch = CorrelationSketch.build(["k", "k", "j"], [1.0, 3.0, 5.0], size=8)
    values = {key: value for _, key, value in sketch.entries}
    assert values["k"] == 2.0
    assert sketch.num_keys == 2


def test_missing_pairs_skipped():
    sketch = CorrelationSketch.build(
        ["a", None, "b", "c"], [1.0, 2.0, float("nan"), 3.0], size=8
    )
    assert sketch.num_keys == 2  # only 'a' and 'c' survive


def test_partial_key_overlap():
    keys_a = [f"k{i}" for i in range(300)]
    keys_b = [f"k{i}" for i in range(150, 450)]
    rng = np.random.default_rng(4)
    shared = {f"k{i}": float(rng.normal()) for i in range(450)}
    a = CorrelationSketch.build(keys_a, [shared[k] for k in keys_a], size=128)
    b = CorrelationSketch.build(keys_b, [shared[k] for k in keys_b], size=128)
    # Values equal on shared keys -> correlation ~1 on the join.
    assert a.estimate_pearson(b) == pytest.approx(1.0, abs=0.01)
    assert a.join_keys_estimate(b) == pytest.approx(150, rel=0.5)


def test_too_small_sample_returns_zero():
    a = CorrelationSketch.build(["x", "y"], [1.0, 2.0], size=4)
    b = CorrelationSketch.build(["p", "q"], [1.0, 2.0], size=4)
    assert a.estimate_pearson(b) == 0.0


def test_seed_mismatch_rejected():
    a = CorrelationSketch.build(["x", "y", "z"], [1, 2, 3], seed=1)
    b = CorrelationSketch.build(["x", "y", "z"], [1, 2, 3], seed=2)
    with pytest.raises(SpecificationError, match="different seeds"):
        a.paired_values(b)


def test_validations():
    with pytest.raises(SpecificationError):
        CorrelationSketch.build(["x"], [1.0], size=1)
    with pytest.raises(SpecificationError):
        CorrelationSketch.build(["x", "y"], [1.0])
    with pytest.raises(EmptyInputError):
        CorrelationSketch.build([None], [1.0])
