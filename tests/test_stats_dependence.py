"""Dependence and association measures."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from respdi.errors import EmptyInputError, SpecificationError
from respdi.stats import (
    conditional_entropy,
    correlation_ratio,
    cramers_v,
    entropy,
    feature_bias_score,
    feature_informativeness_score,
    mutual_information,
    normalized_mutual_information,
    pearson_correlation,
    spearman_correlation,
)


def test_pearson_perfect_and_constant():
    x = [1.0, 2.0, 3.0, 4.0]
    assert pearson_correlation(x, x) == pytest.approx(1.0)
    assert pearson_correlation(x, [-v for v in x]) == pytest.approx(-1.0)
    assert pearson_correlation(x, [5.0] * 4) == 0.0


def test_pearson_validations():
    with pytest.raises(SpecificationError):
        pearson_correlation([1.0], [1.0, 2.0])
    with pytest.raises(EmptyInputError):
        pearson_correlation([], [])


def test_spearman_monotone_nonlinear():
    x = [1.0, 2.0, 3.0, 4.0, 5.0]
    y = [v**3 for v in x]
    assert spearman_correlation(x, y) == pytest.approx(1.0)


def test_spearman_handles_ties():
    assert spearman_correlation([1, 1, 2, 2], [1, 1, 2, 2]) == pytest.approx(1.0)


def test_entropy_known_values():
    assert entropy(["a", "a", "a"]) == 0.0
    assert entropy(["a", "b"]) == pytest.approx(math.log(2))
    with pytest.raises(EmptyInputError):
        entropy([])


def test_mutual_information_identity_and_independence():
    x = ["a", "b", "a", "b"] * 10
    assert mutual_information(x, x) == pytest.approx(entropy(x))
    y_independent = ["p", "p", "q", "q"] * 10
    assert mutual_information(x, y_independent) == pytest.approx(0.0, abs=1e-9)


def test_normalized_mi_bounds_and_constant():
    x = ["a", "b"] * 20
    assert normalized_mutual_information(x, x) == pytest.approx(1.0)
    assert normalized_mutual_information(x, ["c"] * 40) == 0.0


def test_conditional_entropy_certifies_fd():
    determinant = ["a", "a", "b", "b"]
    dependent = ["x", "x", "y", "y"]
    assert conditional_entropy(dependent, determinant) == pytest.approx(0.0)
    noisy = ["x", "y", "y", "y"]
    assert conditional_entropy(noisy, determinant) > 0.0


def test_cramers_v_perfect_and_independent():
    x = ["a", "b"] * 50
    assert cramers_v(x, x) == pytest.approx(1.0)
    y = ["p", "p", "q", "q"] * 25
    assert cramers_v(x, y) == pytest.approx(0.0, abs=1e-9)
    assert cramers_v(x, ["c"] * 100) == 0.0


def test_correlation_ratio_extremes():
    categories = ["a"] * 10 + ["b"] * 10
    values = [0.0] * 10 + [1.0] * 10
    assert correlation_ratio(categories, values) == pytest.approx(1.0)
    assert correlation_ratio(categories, list(range(2)) * 10) < 0.5
    assert correlation_ratio(categories, [3.0] * 20) == 0.0


def test_feature_scores_are_aliases():
    x = ["a", "b"] * 20
    assert feature_bias_score(x, x) == cramers_v(x, x)
    assert feature_informativeness_score(x, x) == normalized_mutual_information(x, x)


paired_floats = st.lists(
    st.tuples(st.floats(-50, 50), st.floats(-50, 50)), min_size=2, max_size=40
)


@given(pairs=paired_floats)
@settings(max_examples=100, deadline=None)
def test_pearson_spearman_bounded(pairs):
    x = [a for a, _ in pairs]
    y = [b for _, b in pairs]
    assert -1.0 - 1e-9 <= pearson_correlation(x, y) <= 1.0 + 1e-9
    assert -1.0 - 1e-9 <= spearman_correlation(x, y) <= 1.0 + 1e-9


paired_categories = st.lists(
    st.tuples(st.sampled_from("abc"), st.sampled_from("xyz")),
    min_size=1,
    max_size=50,
)


@given(pairs=paired_categories)
@settings(max_examples=100, deadline=None)
def test_mi_and_cramers_bounds(pairs):
    x = [a for a, _ in pairs]
    y = [b for _, b in pairs]
    mi = mutual_information(x, y)
    assert mi >= 0.0
    assert mi <= min(entropy(x), entropy(y)) + 1e-9
    assert 0.0 <= cramers_v(x, y) <= 1.0 + 1e-9
    assert 0.0 <= normalized_mutual_information(x, y) <= 1.0
