"""Sustained ingestion under live readers: zero tears, differential truth.

One daemon mutates the catalog continuously (rewrite every lake CSV,
run a cycle, repeat) while reader threads pin snapshots and query.  The
contracts under load:

* **isolation** — every pinned snapshot holds exactly one content
  version across all tables (a mix would be a torn read);
* **differential truth** — the answer a reader got at any observed
  version is byte-identical to what a from-scratch catalog built at
  that version renders for the same query (continuous ingestion
  converges to exactly the cold-rebuild states, not merely similar
  ones);
* **latency** — reads stay serviceable while the writer churns (a
  generous p99 gate catches lock-convoy regressions, not noise).

The full matrix is ``slow``-marked; a short smoke version runs in the
default suite.
"""

import json
import threading
import time

import pytest

from respdi.catalog import CatalogStore
from respdi.catalog.store import table_fingerprint
from respdi.ingest import IngestDaemon
from respdi.service import KeywordQuery, QueryService
from respdi.table import Schema, Table, write_csv

SCHEMA = Schema([("key", "categorical"), ("value", "numeric")])
OPTS = dict(rng=7, num_hashes=16, sketch_size=16)
TABLE_NAMES = ("alpha", "beta")
QUERY = KeywordQuery(text="alpha", k=3)

#: Generous by design: the gate exists to catch a reader blocking on
#: the writer (lock convoy, torn re-pin loop), not scheduler jitter.
P99_GATE_SECONDS = 2.0


def _version_tables(version):
    out = {}
    for name in TABLE_NAMES:
        rows = [
            (f"{name}_v{version}_{i}", float(i) + version) for i in range(6)
        ]
        out[name] = Table.from_rows(SCHEMA, rows)
    return out


def _write_lake(lake, version):
    for name, table in _version_tables(version).items():
        write_csv(table, lake / f"{name}.csv")


def _rendered_cold(tmp_path, version):
    """What a from-scratch catalog at *version* renders for QUERY."""
    cold_dir = tmp_path / f"cold-v{version}"
    CatalogStore.build(cold_dir, _version_tables(version), **OPTS)
    result = QueryService(cold_dir).query(QUERY)
    return json.dumps(QUERY.render(result), sort_keys=True)


def _run_ingest_stress(tmp_path, cycles, readers, versions):
    lake = tmp_path / "lake"
    lake.mkdir()
    _write_lake(lake, 0)
    catalog_dir = tmp_path / "cat"
    CatalogStore.build(catalog_dir, _version_tables(0), **OPTS)
    service = QueryService(catalog_dir, cache_size=64)
    daemon = IngestDaemon(catalog_dir, lake, interval=0.0, service=service)

    fingerprint_versions = {
        table_fingerprint(table): version
        for version in range(versions)
        for table in _version_tables(version).values()
    }
    lock = threading.Lock()
    done = threading.Event()
    errors = []
    torn = []
    observations = []  # (version, rendered bytes)
    latencies = []

    def writer():
        try:
            for cycle in range(1, cycles + 1):
                # Consecutive versions always differ, so every cycle
                # rewrites and re-ingests every table.
                _write_lake(lake, cycle % versions)
                result = daemon.run_cycle()
                assert result.refreshed == len(TABLE_NAMES), result.summary()
        except BaseException as exc:  # pragma: no cover - only on bug
            errors.append(exc)
        finally:
            done.set()

    def reader():
        try:
            reads = 0
            while not done.is_set() or reads == 0:
                start = time.perf_counter()
                snapshot = service.snapshot()
                versions_seen = {
                    name: fingerprint_versions[fingerprint]
                    for name, fingerprint in
                    snapshot.entry_fingerprints().items()
                }
                if len(set(versions_seen.values())) != 1:
                    with lock:
                        torn.append((snapshot.generation, versions_seen))
                    continue
                rendered = json.dumps(
                    QUERY.render(snapshot.query(QUERY)), sort_keys=True
                )
                elapsed = time.perf_counter() - start
                with lock:
                    observations.append(
                        (next(iter(versions_seen.values())), rendered)
                    )
                    latencies.append(elapsed)
                reads += 1
        except BaseException as exc:  # pragma: no cover - only on bug
            errors.append(exc)
            done.set()

    threads = [threading.Thread(target=writer)] + [
        threading.Thread(target=reader) for _ in range(readers)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert errors == [], errors
    assert torn == [], f"{len(torn)} torn read(s): {torn[:3]}"
    assert len(observations) >= readers  # every reader really read

    # Differential truth at every observed version: the served bytes
    # must equal a cold rebuild's bytes, observation for observation.
    expected = {
        version: _rendered_cold(tmp_path, version)
        for version in sorted({version for version, _ in observations})
    }
    mismatched = [
        (version, rendered)
        for version, rendered in observations
        if rendered != expected[version]
    ]
    assert mismatched == [], f"served != cold rebuild: {mismatched[:2]}"

    ordered = sorted(latencies)
    p99 = ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]
    assert p99 < P99_GATE_SECONDS, f"read p99 {p99:.3f}s under ingestion"

    # The catalog the daemon left behind is intact and at the final
    # version — the stress ended in a committed, verifiable state.
    store = CatalogStore.open(catalog_dir)
    assert store.verify() == []
    final = {name: table_fingerprint(table)
             for name, table in _version_tables(cycles % versions).items()}
    assert {n: store.meta(n)["fingerprint"] for n in store.names} == final
    return observations


def test_readers_survive_continuous_ingestion_smoke(tmp_path):
    _run_ingest_stress(tmp_path, cycles=6, readers=2, versions=3)


@pytest.mark.slow
def test_readers_survive_continuous_ingestion_full(tmp_path):
    """The full matrix: ≥50 ingest cycles under 4 concurrent readers."""
    observations = _run_ingest_stress(
        tmp_path, cycles=50, readers=4, versions=4
    )
    # Under a writer this sustained, readers must observe more than one
    # committed version — otherwise the matrix never exercised re-pin.
    assert len({version for version, _ in observations}) >= 2
