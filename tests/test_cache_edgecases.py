"""QueryResultCache eviction edge cases and accounting invariants.

The corners the mainline cache tests skip: a capacity-1 cache (every
insert evicts), generation re-pin racing concurrent lookups (no lost
counts, no stale survivors), tuple-generation (shard-vector) keys under
eviction, and the hypothesis-checked ledger invariant
``hits + misses == lookups`` for arbitrary operation sequences.
"""

import threading

from hypothesis import given, settings
from hypothesis import strategies as st

from respdi.service import QueryResultCache
from respdi.service.cache import is_hit, make_key


# -- capacity 1 ----------------------------------------------------------------


def test_capacity_one_every_insert_evicts_the_previous():
    cache = QueryResultCache(maxsize=1)
    cache.put((1, "a"), "A")
    cache.put((1, "b"), "B")
    assert not is_hit(cache.get((1, "a")))
    assert is_hit(cache.get((1, "b")))
    cache.put((1, "c"), "C")
    assert cache.keys() == ((1, "c"),)
    assert cache.evictions == 2
    assert len(cache) == 1


def test_capacity_one_overwrite_same_key_is_not_an_eviction():
    cache = QueryResultCache(maxsize=1)
    cache.put((1, "a"), "old")
    cache.put((1, "a"), "new")
    assert cache.get((1, "a")) == "new"
    assert cache.evictions == 0


# -- generation re-pin under concurrent lookups --------------------------------


def test_concurrent_lookups_during_repin_lose_no_counts():
    """Readers hammer get() while a writer advances the generation and
    evicts; afterwards the ledger still balances exactly and only
    current-generation entries survive."""
    cache = QueryResultCache(maxsize=256)
    generations = 6
    readers = 4
    reads_each = 300
    for generation in range(generations):
        cache.put(make_key(generation, "warm"), generation)
    barrier = threading.Barrier(readers + 1)
    errors = []

    def reader(seed):
        barrier.wait()
        try:
            for i in range(reads_each):
                generation = (seed + i) % generations
                value = cache.get(make_key(generation, "warm"))
                if is_hit(value):
                    assert value == generation  # never a torn/wrong entry
        except Exception as exc:  # noqa: BLE001 - collected for the assert
            errors.append(exc)

    def repinner():
        barrier.wait()
        for generation in range(1, generations):
            cache.evict_stale_generations(generation)

    threads = [
        threading.Thread(target=reader, args=(i,)) for i in range(readers)
    ] + [threading.Thread(target=repinner)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert errors == []
    stats = cache.stats()
    assert stats["lookups"] == readers * reads_each
    assert stats["hits"] + stats["misses"] == stats["lookups"]
    # After the final re-pin only the newest generation's entry survives.
    cache.evict_stale_generations(generations - 1)
    assert all(key[0] == generations - 1 for key in cache.keys())


def test_repin_during_lookup_never_resurrects_stale_entries():
    cache = QueryResultCache(maxsize=8)
    cache.put(make_key(1, "x"), "gen1")
    cache.evict_stale_generations(2)
    assert not is_hit(cache.get(make_key(1, "x")))
    # A late put keyed on the old generation can land (the writer raced
    # the re-pin) but the next re-pin clears it — eventual consistency.
    cache.put(make_key(1, "x"), "late")
    assert cache.evict_stale_generations(2) == 1
    assert not is_hit(cache.get(make_key(1, "x")))


# -- tuple (shard-vector) generation keys --------------------------------------


def test_vector_generation_eviction_is_componentwise_ordered():
    cache = QueryResultCache(maxsize=8)
    cache.put(make_key((1, 1), "q"), "old")
    cache.put(make_key((1, 2), "q"), "mid")
    cache.put(make_key((2, 2), "q"), "new")
    dropped = cache.evict_stale_generations((2, 2))
    assert dropped == 2
    assert cache.keys() == (((2, 2), "q"),)


def test_vector_keys_under_capacity_pressure():
    cache = QueryResultCache(maxsize=2)
    cache.put(make_key((1, 1), "a"), "A")
    cache.put(make_key((1, 1), "b"), "B")
    assert is_hit(cache.get(make_key((1, 1), "a")))  # touch: a is recent
    cache.put(make_key((1, 2), "c"), "C")  # evicts b (LRU), not a
    assert sorted(cache.keys()) == [((1, 1), "a"), ((1, 2), "c")]


def test_make_key_normalizes_list_vectors():
    assert make_key([3, 1], "fp") == make_key((3, 1), "fp")
    assert make_key(5, "fp") == (5, "fp")


# -- the accounting invariant, property-checked --------------------------------


_ops = st.lists(
    st.tuples(
        st.sampled_from(["get", "put", "evict"]),
        st.integers(min_value=0, max_value=3),  # generation
        st.sampled_from(["a", "b", "c"]),  # fingerprint
    ),
    max_size=60,
)


@settings(max_examples=60, deadline=None)
@given(operations=_ops, maxsize=st.integers(min_value=0, max_value=3))
def test_hits_plus_misses_equals_lookups(operations, maxsize):
    cache = QueryResultCache(maxsize=maxsize)
    expected_lookups = 0
    for op, generation, fingerprint in operations:
        key = make_key(generation, fingerprint)
        if op == "get":
            cache.get(key)
            if cache.enabled:
                expected_lookups += 1
        elif op == "put":
            cache.put(key, (generation, fingerprint))
        else:
            cache.evict_stale_generations(generation)
    stats = cache.stats()
    assert stats["lookups"] == expected_lookups
    assert stats["hits"] + stats["misses"] == stats["lookups"]
    assert stats["size"] <= max(maxsize, 0)
