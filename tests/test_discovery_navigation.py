"""Data-lake organization and navigation."""

import numpy as np
import pytest

from respdi.discovery import LakeOrganization
from respdi.errors import EmptyInputError, SpecificationError
from respdi.table import ColumnType, Schema, Table


def topical_lake(n_topics=6, tables_per_topic=6, seed=0):
    rng = np.random.default_rng(seed)
    org = LakeOrganization()
    domains = {}
    for topic in range(n_topics):
        vocab = [f"t{topic}_v{i}" for i in range(400)]
        for k in range(tables_per_topic):
            domain = list(rng.choice(vocab, size=60, replace=False))
            name = f"topic{topic}_table{k}"
            org.register(
                name,
                Table(Schema([("c", ColumnType.CATEGORICAL)]), {"c": domain}),
            )
            domains[name] = set(domain)
    return org, domains


def test_build_produces_binary_tree_over_all_tables():
    org, domains = topical_lake()
    root = org.build()
    leaves = root.leaves()
    assert {leaf.table_name for leaf in leaves} == set(domains)
    # Binary merges: every internal node has exactly two children.
    def check(node):
        if not node.is_leaf:
            assert len(node.children) == 2
            for child in node.children:
                assert child.values <= node.values
                check(child)
    check(root)


def test_navigation_finds_target_cheaply():
    org, domains = topical_lake()
    target = "topic2_table3"
    query = sorted(domains[target])[:30]
    nav = org.navigate(query)
    _, scanned = org.linear_scan(query)
    assert nav.found == target
    assert nav.nodes_touched < scanned
    assert nav.path[0] == org.root.node_id


def test_navigation_matches_linear_scan_result():
    org, domains = topical_lake(seed=3)
    for target in ("topic0_table0", "topic4_table5"):
        query = sorted(domains[target])[:30]
        nav = org.navigate(query)
        best, _ = org.linear_scan(query)
        assert nav.found == best == target


def test_navigation_gives_up_on_foreign_query():
    org, _ = topical_lake()
    nav = org.navigate([f"alien{i}" for i in range(20)], min_overlap=0.05)
    assert nav.found is None


def test_register_invalidates_tree():
    org, domains = topical_lake(n_topics=2, tables_per_topic=2)
    org.build()
    org.register(
        "late",
        Table(Schema([("c", ColumnType.CATEGORICAL)]), {"c": ["zzz1", "zzz2"]}),
    )
    assert org.root is None
    nav = org.navigate(["zzz1", "zzz2"])  # triggers rebuild
    assert nav.found == "late"


def test_validations():
    org = LakeOrganization()
    with pytest.raises(EmptyInputError):
        org.build()
    numeric_only = Table(Schema([("x", ColumnType.NUMERIC)]), {"x": [1.0]})
    with pytest.raises(SpecificationError, match="categorical"):
        org.register("numeric", numeric_only)
    org.register(
        "a", Table(Schema([("c", ColumnType.CATEGORICAL)]), {"c": ["v"]})
    )
    with pytest.raises(SpecificationError, match="already registered"):
        org.register(
            "a", Table(Schema([("c", ColumnType.CATEGORICAL)]), {"c": ["w"]})
        )
    with pytest.raises(SpecificationError):
        org.navigate([])
    with pytest.raises(SpecificationError):
        org.linear_scan([])


def test_single_table_lake():
    org = LakeOrganization()
    org.register(
        "only", Table(Schema([("c", ColumnType.CATEGORICAL)]), {"c": ["v1", "v2"]})
    )
    nav = org.navigate(["v1"])
    assert nav.found == "only"
    assert nav.nodes_touched == 1
