"""Functional dependencies."""

import pytest

from respdi.errors import EmptyInputError, SpecificationError
from respdi.profiling import fd_holds, fd_violation_ratio, find_functional_dependencies
from respdi.table import Schema, Table


def make_table(rows):
    schema = Schema(
        [("zip", "categorical"), ("city", "categorical"), ("race", "categorical")]
    )
    return Table.from_rows(schema, rows)


def test_exact_fd_holds():
    table = make_table(
        [("10001", "nyc", "w"), ("10001", "nyc", "b"), ("60601", "chi", "w")]
    )
    assert fd_violation_ratio(table, ["zip"], "city") == 0.0
    assert fd_holds(table, ["zip"], "city")


def test_violations_counted_as_g3():
    table = make_table(
        [
            ("10001", "nyc", "w"),
            ("10001", "nyc", "w"),
            ("10001", "boston", "w"),  # violation: minority value for 10001
            ("60601", "chi", "w"),
        ]
    )
    assert fd_violation_ratio(table, ["zip"], "city") == pytest.approx(1 / 4)
    assert fd_holds(table, ["zip"], "city", tolerance=0.3)
    assert not fd_holds(table, ["zip"], "city")


def test_multi_column_determinant():
    table = make_table(
        [("1", "a", "x"), ("1", "b", "y"), ("2", "a", "y"), ("2", "b", "x")]
    )
    # Neither zip nor city alone determines race, but together they do.
    assert fd_violation_ratio(table, ["zip"], "race") > 0
    assert fd_violation_ratio(table, ["zip", "city"], "race") == 0.0


def test_missing_rows_excluded():
    table = make_table(
        [("1", "a", "x"), ("1", None, "x"), (None, "a", "x")]
    )
    assert fd_violation_ratio(table, ["zip"], "city") == 0.0


def test_all_missing_raises():
    table = make_table([(None, "a", "x")])
    with pytest.raises(EmptyInputError):
        fd_violation_ratio(table, ["zip"], "city")


def test_validations():
    table = make_table([("1", "a", "x")])
    with pytest.raises(SpecificationError):
        fd_violation_ratio(table, [], "city")
    with pytest.raises(SpecificationError):
        fd_violation_ratio(table, ["zip"], "zip")
    with pytest.raises(SpecificationError):
        fd_holds(table, ["zip"], "city", tolerance=-0.1)


def test_find_functional_dependencies_orders_by_ratio():
    table = make_table(
        [
            ("1", "a", "x"),
            ("1", "a", "x"),
            ("2", "b", "y"),
            ("2", "b", "x"),
        ]
    )
    found = find_functional_dependencies(
        table, ["zip", "city"], ["race"], tolerance=0.5
    )
    assert found
    ratios = [ratio for _, _, ratio in found]
    assert ratios == sorted(ratios)
    determinants = {d[0] for d, _, _ in found}
    assert determinants <= {"zip", "city"}


def test_sensitive_to_target_fd_detection(health_table):
    """In the synthetic health data race does NOT determine the label."""
    found = find_functional_dependencies(
        health_table.with_column(
            "label", "categorical",
            ["pos" if v == 1.0 else "neg" for v in health_table.column("y")],
        ),
        ["race"],
        ["label"],
        tolerance=0.0,
    )
    assert found == []
