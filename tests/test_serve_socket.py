"""Socket serve path and admission control unit coverage.

Admission first, deterministically (token buckets on a fake clock, the
ledger invariant, the inflight gate, quota-spec parsing, the latency
ledger's percentiles), then the threaded socket server end to end:
concurrent clients, in-band errors, tenant quotas shedding load with
honest ``retry_after_ms`` hints, ungated health ops, the ``stats`` op's
composed report, and byte-identity between socket and stdin responses.
"""

import json
import socket
import threading

import pytest

from respdi.catalog import CatalogStore
from respdi.errors import SpecificationError
from respdi.service import (
    AdmissionController,
    LatencyLedger,
    QueryService,
    SocketQueryServer,
    TokenBucket,
    handle_request,
    parse_quota_specs,
    reset_shared_services,
)
from respdi.service.admission import DEFAULT_TENANT
from respdi.table import Schema, Table

SCHEMA = Schema([("key", "categorical"), ("value", "numeric")])
OPTS = dict(rng=7, num_hashes=16, sketch_size=16)


def _table(tag, n=8):
    rows = [(f"{tag}_{i}", float(i)) for i in range(n)]
    return Table.from_rows(SCHEMA, rows)


TABLES = {"alpha": _table("a"), "beta": _table("b"), "gamma": _table("g")}


@pytest.fixture(autouse=True)
def _clean_shared():
    reset_shared_services()
    yield
    reset_shared_services()


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# -- token bucket --------------------------------------------------------------


def test_bucket_burst_then_exact_retry_after():
    clock = FakeClock()
    bucket = TokenBucket(rate=2.0, burst=3.0, clock=clock)
    assert [bucket.try_take()[0] for _ in range(3)] == [True, True, True]
    admitted, retry_after = bucket.try_take()
    assert not admitted
    # Empty bucket at 2 tokens/sec: exactly half a second to one token.
    assert retry_after == pytest.approx(0.5)
    clock.advance(0.5)
    assert bucket.try_take() == (True, 0.0)


def test_bucket_refill_caps_at_burst():
    clock = FakeClock()
    bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
    clock.advance(60.0)  # a long idle period must not bank 600 tokens
    assert bucket.tokens == pytest.approx(2.0)


def test_unlimited_bucket_always_admits():
    bucket = TokenBucket(rate=None)
    assert all(bucket.try_take() == (True, 0.0) for _ in range(100))


def test_bucket_rejects_bad_parameters():
    with pytest.raises(SpecificationError):
        TokenBucket(rate=0.0)
    with pytest.raises(SpecificationError):
        TokenBucket(rate=1.0, burst=0.5)


# -- admission controller ------------------------------------------------------


def test_quota_rejection_carries_retry_after_ms():
    clock = FakeClock()
    controller = AdmissionController(
        quotas={"noisy": (1.0, 1.0)}, clock=clock
    )
    assert controller.admit("noisy")
    ticket = controller.admit("noisy")
    assert not ticket and ticket.reason == "quota"
    shed = ticket.rejection()
    assert shed["error"] == "overloaded" and shed["tenant"] == "noisy"
    assert shed["retry_after_ms"] >= 1  # never "retry immediately"
    clock.advance(1.0)
    assert controller.admit("noisy")


def test_inflight_gate_bounds_concurrency_and_releases():
    controller = AdmissionController(max_inflight=2)
    first = controller.admit("a")
    second = controller.admit("b")
    third = controller.admit("c")
    assert first and second and not third
    assert third.reason == "inflight"
    assert controller.inflight == 2 and controller.peak_inflight == 2
    with first:
        pass  # context exit releases the slot
    assert controller.inflight == 1
    assert controller.admit("c")


def test_over_quota_tenant_cannot_consume_inflight_slots():
    clock = FakeClock()
    controller = AdmissionController(
        max_inflight=1, quotas={"noisy": (1.0, 1.0)}, clock=clock
    )
    assert controller.admit("noisy")
    # noisy is now out of tokens; its rejections must not occupy the gate.
    assert controller.admit("noisy").reason == "quota"
    assert controller.inflight == 1  # only the admitted request holds a slot


def test_ledger_balances_per_tenant_and_globally():
    clock = FakeClock()
    controller = AdmissionController(
        max_inflight=3, quotas={"t0": (1.0, 2.0)}, clock=clock
    )
    for tenant in ("t0", "t0", "t0", "t1", "t1"):
        controller.admit(tenant)
    ledger = controller.ledger()
    for tenant, row in ledger.items():
        assert (
            row["admitted"] + row["rejected_quota"] + row["rejected_inflight"]
            == row["received"]
        ), tenant
    totals = controller.stats()["totals"]
    assert totals["received"] == 5
    assert (
        totals["admitted"]
        + totals["rejected_quota"]
        + totals["rejected_inflight"]
        == 5
    )


def test_release_is_idempotent_per_ticket():
    controller = AdmissionController(max_inflight=1)
    ticket = controller.admit("a")
    with ticket:
        pass
    with ticket:
        pass  # re-entering a spent ticket must not double-release
    assert controller.inflight == 0
    assert controller.admit("a")  # exactly one slot exists again


def test_parse_quota_specs():
    quotas = parse_quota_specs(["alice=5", "bob=2.5:10"])
    assert quotas == {"alice": (5.0, 5.0), "bob": (2.5, 10.0)}
    assert parse_quota_specs(["slow=0.5"]) == {"slow": (0.5, 1.0)}
    with pytest.raises(SpecificationError):
        parse_quota_specs(["no-equals"])
    with pytest.raises(SpecificationError):
        parse_quota_specs(["t=fast"])


# -- latency ledger ------------------------------------------------------------


def test_latency_percentiles_nearest_rank():
    ledger = LatencyLedger()
    for ms in range(1, 101):  # 1..100 ms
        ledger.observe("kind.keyword", ms / 1000.0)
    assert ledger.percentile("kind.keyword", 50.0) == pytest.approx(0.050)
    assert ledger.percentile("kind.keyword", 99.0) == pytest.approx(0.099)
    summary = ledger.summary("kind.keyword")
    assert summary["count"] == 100 and summary["max"] == pytest.approx(0.100)


def test_latency_window_is_bounded_and_recent():
    ledger = LatencyLedger(window=4)
    for value in (9.0, 9.0, 9.0, 9.0, 1.0, 1.0, 1.0, 1.0):
        ledger.observe("k", value)
    assert ledger.summary("k")["max"] == 1.0  # the 9s aged out
    assert ledger.summary("k")["count"] == 8  # lifetime count still honest


def test_latency_empty_key_is_zeroes():
    ledger = LatencyLedger()
    assert ledger.summary("nothing") == {
        "count": 0, "p50": 0.0, "p99": 0.0, "max": 0.0,
    }


# -- the socket server ---------------------------------------------------------


@pytest.fixture
def catalog(tmp_path):
    CatalogStore.build(tmp_path / "cat", TABLES, **OPTS)
    return tmp_path / "cat"


def _ask(address, requests):
    """One connection, many requests; returns the raw response lines."""
    with socket.create_connection(address, timeout=10) as conn:
        reader = conn.makefile("r", encoding="utf-8", newline="\n")
        writer = conn.makefile("w", encoding="utf-8", newline="\n")
        lines = []
        for request in requests:
            writer.write(json.dumps(request) + "\n")
            writer.flush()
            lines.append(reader.readline())
        return lines


def _start(service, **kwargs):
    server = SocketQueryServer(service, **kwargs)
    server.start()
    return server


def test_socket_roundtrip_matches_stdin_bytes(catalog):
    service = QueryService(catalog, cache_size=8)
    server = _start(service)
    try:
        request = {"op": "keyword", "text": "alpha", "k": 3}
        (line,) = _ask(server.address, [request])
        over_socket = json.loads(line)
        direct = handle_request(service, request)
        assert json.dumps(over_socket, sort_keys=True) == json.dumps(
            direct, sort_keys=True
        )
        assert over_socket["ok"] and over_socket["results"]
    finally:
        server.stop()


def test_socket_serves_concurrent_clients(catalog):
    service = QueryService(catalog, cache_size=32)
    server = _start(service)
    results = []
    errors = []

    def client(index):
        try:
            request = {"op": "keyword", "text": "alpha", "k": 3}
            (line,) = _ask(server.address, [request])
            results.append(json.loads(line))
        except Exception as exc:  # noqa: BLE001 - collected for the assert
            errors.append(exc)

    try:
        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert len(results) == 8 and all(r["ok"] for r in results)
        # All clients saw one identical answer (one generation, one query).
        rendered = {json.dumps(r, sort_keys=True) for r in results}
        assert len(rendered) == 1
        assert server.connections_accepted == 8
    finally:
        server.stop()


def test_bad_json_is_answered_in_band(catalog):
    service = QueryService(catalog)
    server = _start(service)
    try:
        with socket.create_connection(server.address, timeout=10) as conn:
            reader = conn.makefile("r", encoding="utf-8", newline="\n")
            writer = conn.makefile("w", encoding="utf-8", newline="\n")
            writer.write("this is not json\n")
            writer.flush()
            response = json.loads(reader.readline())
            assert not response["ok"] and "error" in response
            # The connection survived the bad line.
            writer.write(json.dumps({"op": "ping"}) + "\n")
            writer.flush()
            assert json.loads(reader.readline())["ok"]
    finally:
        server.stop()


def test_stop_op_closes_only_its_connection(catalog):
    service = QueryService(catalog)
    server = _start(service)
    try:
        lines = _ask(server.address, [{"op": "stop"}])
        assert json.loads(lines[0])["ok"]
        # The server still accepts new connections afterwards.
        (line,) = _ask(server.address, [{"op": "ping"}])
        assert json.loads(line)["ok"]
    finally:
        server.stop()


def test_quota_shed_responses_are_structured(catalog):
    service = QueryService(catalog, cache_size=8)
    admission = AdmissionController(quotas={"noisy": (0.001, 1.0)})
    server = _start(service, admission=admission)
    try:
        request = {"op": "keyword", "text": "alpha", "tenant": "noisy"}
        lines = _ask(server.address, [request, request])
        first, second = (json.loads(line) for line in lines)
        assert first["ok"]
        assert not second["ok"] and second["error"] == "overloaded"
        assert second["reason"] == "quota" and second["tenant"] == "noisy"
        assert second["retry_after_ms"] >= 1
        ledger = admission.ledger()["noisy"]
        assert ledger == {
            "received": 2,
            "admitted": 1,
            "rejected_quota": 1,
            "rejected_inflight": 0,
        }
    finally:
        server.stop()


def test_ping_and_stats_bypass_admission(catalog):
    service = QueryService(catalog)
    admission = AdmissionController(quotas={DEFAULT_TENANT: (0.001, 1.0)})
    server = _start(service, admission=admission)
    try:
        query = {"op": "keyword", "text": "alpha"}
        lines = _ask(
            server.address, [query, query, {"op": "ping"}, {"op": "stats"}]
        )
        parsed = [json.loads(line) for line in lines]
        assert parsed[0]["ok"] and not parsed[1]["ok"]  # quota bit
        assert parsed[2]["ok"] and parsed[3]["ok"]  # health always answers
        assert admission.stats()["totals"]["received"] == 2  # ungated uncounted
    finally:
        server.stop()


def test_stats_op_composes_all_sections(catalog, tmp_path):
    from respdi.service import open_pcache

    service = QueryService(catalog, cache_size=8)
    pcache = open_pcache(catalog, directory=tmp_path / "pc")
    admission = AdmissionController(max_inflight=4)
    server = _start(service, admission=admission, pcache=pcache)
    try:
        query = {"op": "keyword", "text": "alpha", "tenant": "alice"}
        lines = _ask(server.address, [query, query, {"op": "stats"}])
        stats = json.loads(lines[2])["stats"]
        assert stats["server"]["requests_served"] >= 2
        assert stats["admission"]["tenants"]["alice"]["admitted"] == 2
        assert stats["pcache"]["stores"] == 1  # miss then persistent hit
        assert stats["pcache"]["hits"] == 1
        assert stats["latency"]["kind.keyword"]["count"] == 2
        assert stats["latency"]["tenant.alice"]["p99"] >= 0.0
        assert stats["hits"] + stats["misses"] == stats["lookups"]
    finally:
        server.stop()


def test_max_requests_latches_shutdown(catalog):
    service = QueryService(catalog)
    server = _start(service, max_requests=2)
    try:
        _ask(server.address, [{"op": "ping"}, {"op": "ping"}])
        assert server.wait(timeout=5.0)  # the latch tripped
    finally:
        server.stop()
    assert server.requests_served == 2


def test_cli_serve_over_socket(catalog):
    # The CLI path: --port 0 binds an ephemeral port and serves until
    # max-requests; drive it from a thread like an external client would.
    from respdi.catalog.cli import main

    import re
    import sys
    import threading as _threading

    class _Stderr:
        def __init__(self):
            self.lines = []
            self.event = _threading.Event()

        def write(self, text):
            self.lines.append(text)
            if "serving on" in text:
                self.event.set()

        def flush(self):
            pass

    captured = _Stderr()
    original = sys.stderr
    sys.stderr = captured
    exit_codes = []
    try:
        runner = _threading.Thread(
            target=lambda: exit_codes.append(
                main(["serve", str(catalog), "--port", "0",
                      "--max-requests", "1"])
            ),
            daemon=True,
        )
        runner.start()
        assert captured.event.wait(timeout=10)
        match = re.search(
            r"serving on ([\d.]+):(\d+)", "".join(captured.lines)
        )
        assert match
        (line,) = _ask((match.group(1), int(match.group(2))), [{"op": "ping"}])
        assert json.loads(line)["ok"]
        runner.join(timeout=10)
        assert not runner.is_alive()
    finally:
        sys.stderr = original
    assert exit_codes == [0]
