"""Sharded differential suite: scatter-gather == unsharded, byte for byte.

The sharded read path's contract is *identity*, not approximation: for
any catalog contents and any query, a sharded catalog (any shard count)
answers byte-identically to a single unsharded :class:`CatalogStore`
over the same tables with the same hasher seed — across shard counts
N ∈ {1, 2, 4}, serial/threads backends, cached and uncached passes,
after a reshard, and across ``PYTHONHASHSEED`` values (cross-process,
on rendered JSON).  "Byte-identical" is enforced on ``repr`` (covers
every float and every ordering) and on the serve loop's rendered form.

The merge step's order-independence — the property that makes the
identity hold no matter which shard answers first — is property-tested
directly on :func:`~respdi.service.sharded.merge_ranked`.
"""

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from respdi.catalog import CatalogStore, ShardedCatalogStore, reshard
from respdi.parallel import ExecutionContext
from respdi.service import (
    ContainmentQuery,
    JoinQuery,
    KeywordQuery,
    QueryService,
    ShardedQueryService,
    UnionQuery,
    merge_ranked,
)
from respdi.table import Schema, Table

SCHEMA = Schema([("key", "categorical"), ("value", "numeric")])
OPTS = dict(rng=7, num_hashes=16, sketch_size=16)
SRC = str(Path(__file__).resolve().parent.parent / "src")

#: Tiny closed vocabulary: cross-table overlap (join/containment hits)
#: and disjoint tables are both reachable within few examples.
_WORDS = ["ada", "bee", "cat", "doe", "elk", "fox"]


def _table(values):
    rows = [(value, float(i)) for i, value in enumerate(values)]
    return Table.from_rows(SCHEMA, rows)


def _lake(n_tables=7, rows=9):
    return {
        f"tab_{chr(ord('a') + t)}": _table(
            [_WORDS[(t + i) % len(_WORDS)] for i in range(rows - t % 3)]
        )
        for t in range(n_tables)
    }


def _queries(values):
    return [
        KeywordQuery(text=values[0], k=5),
        UnionQuery(table=_table(values), k=5),
        JoinQuery(values=tuple(values), k=5),
        ContainmentQuery(values=tuple(values), threshold=0.2),
    ]


def _reprs(service, queries, **kwargs):
    return [repr(service.query(q, **kwargs)) for q in queries]


@pytest.mark.parametrize("num_shards", [1, 2, 4])
def test_sharded_answers_identical_to_unsharded(tmp_path, num_shards):
    """The acceptance matrix: N ∈ {1,2,4} x {serial, threads} x
    {uncached, cache-miss, cache-hit, batched} — all equal to the
    unsharded answer, hit results are the same cached object."""
    tables = _lake()
    plain = CatalogStore.build(tmp_path / "plain", tables, **OPTS)
    sharded = ShardedCatalogStore.build(
        tmp_path / "sharded", tables, num_shards=num_shards, **OPTS
    )
    queries = _queries(["ada", "bee", "fox"])
    baseline = [
        repr(QueryService(plain).query(q, cached=False)) for q in queries
    ]
    assert any(r != "[]" for r in baseline)  # the lake actually answers

    for context in (
        ExecutionContext(),
        ExecutionContext(backend="threads", n_jobs=2, chunksize=1),
    ):
        service = ShardedQueryService(sharded, context=context)
        assert _reprs(service, queries, cached=False) == baseline
        assert _reprs(service, queries) == baseline  # miss pass
        hits = [service.query(q) for q in queries]  # hit pass
        assert [repr(h) for h in hits] == baseline
        again = [service.query(q) for q in queries]
        for hit, cached in zip(hits, again):
            assert hit is cached  # a hit is the stored object itself
        batched = service.query_many(queries)
        assert [repr(r) for r in batched] == baseline


def test_rendered_results_identical_to_unsharded(tmp_path):
    """The serve loop's wire format — rendered JSON — matches too, so a
    client cannot tell which flavor answered."""
    tables = _lake()
    plain = QueryService(CatalogStore.build(tmp_path / "plain", tables, **OPTS))
    sharded = ShardedQueryService(
        ShardedCatalogStore.build(
            tmp_path / "sharded", tables, num_shards=4, **OPTS
        )
    )
    for query in _queries(["cat", "doe", "elk"]):
        expected = query.render(plain.query(query))
        rendered = query.render(sharded.query(query))
        assert json.dumps(rendered, sort_keys=True) == json.dumps(
            expected, sort_keys=True
        )


@given(
    raw_tables=st.dictionaries(
        st.sampled_from(["tab_a", "tab_b", "tab_c"]),
        st.lists(st.sampled_from(_WORDS), min_size=1, max_size=8),
        min_size=1,
        max_size=3,
    ),
    values=st.lists(st.sampled_from(_WORDS), min_size=1, max_size=4, unique=True),
)
@settings(max_examples=6, deadline=None)
def test_identity_holds_for_arbitrary_lakes(raw_tables, values):
    """Property form: whatever the tables (including ones that route all
    to one shard, leaving siblings empty), sharded == unsharded."""
    tables = {name: _table(cells) for name, cells in raw_tables.items()}
    with tempfile.TemporaryDirectory() as tmp:
        plain = QueryService(
            CatalogStore.build(Path(tmp) / "plain", tables, **OPTS)
        )
        sharded = ShardedQueryService(
            ShardedCatalogStore.build(
                Path(tmp) / "sharded", tables, num_shards=3, **OPTS
            )
        )
        for query in _queries(values):
            assert repr(sharded.query(query)) == repr(
                plain.query(query, cached=False)
            )


def test_reshard_preserves_answers_exactly(tmp_path):
    """plain -> 4 shards -> 2 shards: every hop answers identically (no
    re-sketching happens, so nothing can drift)."""
    tables = _lake()
    plain = CatalogStore.build(tmp_path / "plain", tables, **OPTS)
    queries = _queries(["ada", "elk"])
    baseline = [
        repr(QueryService(plain).query(q, cached=False)) for q in queries
    ]
    reshard(tmp_path / "plain", tmp_path / "by4", num_shards=4)
    reshard(tmp_path / "by4", tmp_path / "by2", num_shards=2)
    for directory in (tmp_path / "by4", tmp_path / "by2"):
        service = ShardedQueryService(ShardedCatalogStore.open(directory))
        assert _reprs(service, queries, cached=False) == baseline


def test_refresh_invalidates_vector_and_stays_identical(tmp_path):
    """After a refresh_many, the sharded service re-pins its generation
    vector and keeps matching an unsharded store given the same update."""
    tables = _lake()
    plain = CatalogStore.build(tmp_path / "plain", tables, **OPTS)
    sharded = ShardedCatalogStore.build(
        tmp_path / "sharded", tables, num_shards=4, **OPTS
    )
    service = ShardedQueryService(sharded)
    queries = _queries(["bee", "fox"])
    before = _reprs(service, queries)  # populate cache at the old vector
    old_generation = service.snapshot().generation

    updates = {"tab_a": _table(["zulu", "yak", "wren"]), "tab_b": tables["tab_b"]}
    assert sharded.refresh_many(dict(updates)) == {
        "tab_a": True,
        "tab_b": False,
    }
    assert plain.refresh_many(dict(updates)) == {"tab_a": True, "tab_b": False}

    new_generation = service.snapshot().generation
    assert new_generation != old_generation
    assert all(new >= old for new, old in zip(new_generation, old_generation))
    after = _reprs(service, queries)
    expected = [
        repr(QueryService(plain).query(q, cached=False)) for q in queries
    ]
    assert after == expected
    assert after != before  # the refresh was visible, not served stale


# -- merge-order independence -------------------------------------------------

_containment_partials = st.lists(
    st.lists(
        st.tuples(
            st.text(min_size=1, max_size=6),
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        ),
        max_size=5,
    ),
    min_size=1,
    max_size=5,
)


@given(
    partials=_containment_partials,
    seed=st.integers(min_value=0, max_value=2**16),
    k=st.one_of(st.none(), st.integers(min_value=0, max_value=8)),
)
@settings(max_examples=150, deadline=None)
def test_merge_is_independent_of_shard_completion_order(partials, seed, k):
    """merge_ranked(P) == merge_ranked(shuffle(P)): the gather step may
    receive shard partials in any completion order without changing one
    byte of the ranking (ties included — the rank key is total)."""
    import random

    reference = merge_ranked(partials, "containment", k)
    shuffled = list(partials)
    random.Random(seed).shuffle(shuffled)
    assert merge_ranked(shuffled, "containment", k) == reference
    # And merging is insensitive to how items are grouped into shards:
    flat = [item for partial in partials for item in partial]
    singletons = [[item] for item in flat]
    random.Random(seed + 1).shuffle(singletons)
    assert merge_ranked(singletons, "containment", k) == reference


# -- PYTHONHASHSEED x backend x shard-count matrix ----------------------------

_SCRIPT = r"""
import json, sys
from pathlib import Path

from respdi.catalog import CatalogStore, ShardedCatalogStore
from respdi.parallel import ExecutionContext
from respdi.service import (
    ContainmentQuery, JoinQuery, KeywordQuery,
    QueryService, ShardedQueryService, UnionQuery,
)
from respdi.table import Schema, Table

out_dir, backend, num_shards = (
    Path(sys.argv[1]), sys.argv[2], int(sys.argv[3])
)
schema = Schema([("key", "categorical"), ("value", "numeric")])

def table(tag, n):
    return Table.from_rows(
        schema, [(f"{tag}_{i % 5}", float(i)) for i in range(n)]
    )

tables = {"tab_a": table("a", 9), "tab_b": table("b", 7), "tab_c": table("a", 5)}
opts = dict(rng=7, num_hashes=16, sketch_size=16)
context = (
    ExecutionContext()
    if backend == "serial"
    else ExecutionContext(backend=backend, n_jobs=2, chunksize=1)
)
if num_shards == 0:  # the unsharded baseline flavor
    store = CatalogStore.build(out_dir / "cat", tables, **opts)
    service = QueryService(store, context=context)
else:
    store = ShardedCatalogStore.build(
        out_dir / "cat", tables, num_shards=num_shards, **opts
    )
    service = ShardedQueryService(store, context=context)
queries = [
    KeywordQuery(text="tab_a", k=5),
    UnionQuery(table=table("a", 4), k=5),
    JoinQuery(values=("a_1", "a_2", "b_3"), k=5),
    ContainmentQuery(values=("a_0", "a_1"), threshold=0.2),
]
lines = []
for cached in (False, True, True):  # uncached, miss, hit
    results = service.query_many(queries, cached=cached)
    lines.append(
        [query.render(result) for query, result in zip(queries, results)]
    )
print(json.dumps({"passes": lines}))
"""


def _run_flavor(tmp_path, backend, hash_seed, num_shards):
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    out_dir = tmp_path / f"{backend}-{hash_seed}-{num_shards}"
    out_dir.mkdir()
    result = subprocess.run(
        [sys.executable, "-c", _SCRIPT, str(out_dir), backend, str(num_shards)],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(result.stdout)


@pytest.mark.slow
def test_sharded_identical_across_shards_backends_and_hash_seeds(tmp_path):
    """The full acceptance matrix, cross-process: shard counts {1,2,4}
    x backends {serial, threads} x hash seeds {1,2}, every cell's
    rendered answers equal to the unsharded serial baseline."""
    baseline = _run_flavor(tmp_path, "serial", "1", 0)
    assert (
        baseline["passes"][0]
        == baseline["passes"][1]
        == baseline["passes"][2]
    )
    assert any(any(results) for results in baseline["passes"][0])
    for num_shards in (1, 2, 4):
        for backend in ("serial", "threads"):
            for seed in ("1", "2"):
                run = _run_flavor(tmp_path, backend, seed, num_shards)
                assert run == baseline, (
                    f"shards={num_shards} backend={backend} "
                    f"PYTHONHASHSEED={seed} diverges from unsharded serial"
                )
