"""Differential suite: the vectorized hashing core is byte-identical to
the seed scalar implementations.

``tests/data/seed_golden.json`` was recorded by running the *seed*
(pre-vectorization) code over deterministic inputs; every vectorized
path must reproduce those values exactly.  On top of the golden pins,
hypothesis drives the vectorized kernels against the retained scalar
references over adversarial value mixes.
"""

import hashlib
import json
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from respdi.catalog.store import table_fingerprint
from respdi.discovery.correlation_sketches import CorrelationSketch, _key_hash
from respdi.discovery.minhash import MinHasher, _stable_hash32
from respdi.table import hashing
from respdi.table.hashing import (
    clear_hash_caches,
    digest_categorical,
    hash_cache_info,
    minhash_mins,
    salted_hash64,
    salted_hash64_list,
    stable_hash32,
    stable_hash32_array,
    stable_hash32_list,
)

GOLDEN = json.loads(
    (Path(__file__).parent / "data" / "seed_golden.json").read_text()
)

#: Values with awkward reprs; must stay in sync with the golden generator.
TRICKY_VALUES = [
    "plain",
    "",
    "café",
    "nul\x00byte",
    "line\nbreak",
    "日本語",
    1,
    1.0,
    True,
    False,
    0,
    -0.0,
    0.0,
    None,
    (1, "two"),
    "1",
    "True",
    3.141592653589793,
    -17,
    10**30,
]

value_strategy = st.one_of(
    st.text(max_size=20),
    st.integers(min_value=-(10**12), max_value=10**12),
    st.floats(allow_nan=False),
    st.booleans(),
    st.none(),
    st.sampled_from(TRICKY_VALUES),
    st.tuples(st.integers(), st.text(max_size=5)),
)


# -- scalar references match the seed implementations -------------------------


def test_stable_hash32_matches_seed_reference():
    for value in TRICKY_VALUES:
        assert stable_hash32(value) == _stable_hash32(value)


def test_stable_hash32_matches_golden():
    for key, expected in GOLDEN["stable_hash32"].items():
        assert stable_hash32(eval(key)) == expected  # noqa: S307 - test fixture reprs


def test_salted_hash64_matches_golden():
    for key, by_seed in GOLDEN["key_hash"].items():
        value = eval(key)  # noqa: S307 - test fixture reprs
        for seed, expected in by_seed.items():
            assert salted_hash64(value, int(seed)) == expected
            assert _key_hash(value, int(seed)) == expected


# -- batched paths == scalar references ---------------------------------------


@given(values=st.lists(value_strategy, max_size=60))
@settings(max_examples=120, deadline=None)
def test_batched_hash32_equals_scalar(values):
    assert stable_hash32_list(values) == [stable_hash32(v) for v in values]


@given(values=st.lists(value_strategy, max_size=40), seed=st.integers(0, 2**20))
@settings(max_examples=80, deadline=None)
def test_batched_salted64_equals_scalar(values, seed):
    assert salted_hash64_list(values, seed) == [
        salted_hash64(v, seed) for v in values
    ]


def test_batched_hash32_array_dtype_and_values():
    array = stable_hash32_array(TRICKY_VALUES)
    assert array.dtype == np.uint64
    assert array.tolist() == [stable_hash32(v) for v in TRICKY_VALUES]


def test_batched_hash32_warm_path_stays_identical():
    clear_hash_caches()
    cold = stable_hash32_list(TRICKY_VALUES)
    warm = stable_hash32_list(TRICKY_VALUES)
    assert cold == warm == [stable_hash32(v) for v in TRICKY_VALUES]


def test_equal_values_with_distinct_reprs_hash_distinctly():
    # 1 == 1.0 == True but their reprs (and therefore hashes) differ;
    # the memo caches must never conflate them.
    hashes = stable_hash32_list([1, 1.0, True, "1", np.float64(1.0)])
    assert len(set(hashes)) == 5
    assert stable_hash32_list([0.0, -0.0]) == [
        stable_hash32(0.0),
        stable_hash32(-0.0),
    ]
    assert stable_hash32(0.0) != stable_hash32(-0.0)


def test_unhashable_values_fall_back_to_repr_memo():
    values = [[1, 2], {"a": 1}, {1, 2}]
    assert stable_hash32_list(values) == [stable_hash32(v) for v in values]


def test_cache_bounds_and_clear():
    clear_hash_caches()
    stable_hash32_list(["x", 1, None, (1,)])
    assert hash_cache_info()["hash32"] == 4
    clear_hash_caches()
    assert hash_cache_info() == {"hash32": 0, "salted64": 0, "salted_seeds": 0}
    # Overflowing the limit clears wholesale instead of growing forever.
    old_limit = hashing._MEMO_LIMIT
    hashing._MEMO_LIMIT = 8
    try:
        stable_hash32_list([f"v{i}" for i in range(20)])
        assert hash_cache_info()["hash32"] <= 8
    finally:
        hashing._MEMO_LIMIT = old_limit
        clear_hash_caches()


# -- minhash transform --------------------------------------------------------


@given(
    n_values=st.integers(1, 700),
    num_hashes=st.integers(1, 64),
    seed=st.integers(0, 1000),
)
@settings(max_examples=40, deadline=None)
def test_minhash_mins_equals_seed_broadcast(n_values, num_hashes, seed):
    rng = np.random.default_rng(seed)
    a = rng.integers(1, (1 << 31) - 1, size=num_hashes, dtype=np.uint64)
    b = rng.integers(0, (1 << 31) - 1, size=num_hashes, dtype=np.uint64)
    hashes = rng.integers(0, 1 << 32, size=n_values, dtype=np.uint64)
    prime = np.uint64((1 << 31) - 1)
    expected = ((a[:, None] * hashes[None, :] + b[:, None]) % prime).min(axis=1)
    assert np.array_equal(minhash_mins(a, b, hashes), expected)
    # Chunk boundaries must not matter.
    assert np.array_equal(minhash_mins(a, b, hashes, chunk=7), expected)


def test_minhash_mins_rejects_empty():
    a = np.ones(4, dtype=np.uint64)
    with pytest.raises(ValueError):
        minhash_mins(a, a, np.empty(0, dtype=np.uint64))


def test_minhash_signature_matches_golden():
    hasher = MinHasher(
        num_hashes=GOLDEN["minhash"]["num_hashes"], rng=GOLDEN["minhash"]["rng"]
    )
    assert hasher.fingerprint == GOLDEN["minhash"]["coefficient_fingerprint"]
    signature = hasher.signature(TRICKY_VALUES)
    assert [int(v) for v in signature.values] == (
        GOLDEN["minhash"]["signatures"]["tricky"]
    )


# -- streaming categorical digests --------------------------------------------


@given(
    values=st.lists(value_strategy, max_size=50),
    chunk=st.integers(1, 64),
)
@settings(max_examples=80, deadline=None)
def test_digest_categorical_equals_repr_list(values, chunk):
    array = np.empty(len(values), dtype=object)
    array[:] = values
    seed_digest = hashlib.blake2b(digest_size=16)
    seed_digest.update(repr(list(array)).encode("utf-8"))
    streamed = hashlib.blake2b(digest_size=16)
    digest_categorical(streamed, array, chunk=chunk)
    assert streamed.hexdigest() == seed_digest.hexdigest()


# -- end-to-end artifacts against the recorded seed values --------------------


def _golden_tables():
    import tests.data.gen_seed_golden as gen

    return gen.golden_tables()


def test_table_fingerprints_match_golden():
    tables = _golden_tables()
    for name, expected in GOLDEN["table_fingerprints"].items():
        assert table_fingerprint(tables[name]) == expected, name


def test_correlation_sketch_matches_golden():
    keys = [f"k{i % 9}" if i % 13 else None for i in range(40)]
    values = [float("nan") if i % 5 == 0 else float(i) * 0.5 for i in range(40)]
    sketch = CorrelationSketch.build(keys, values, size=8, seed=17)
    assert sketch.num_keys == GOLDEN["correlation_sketch"]["num_keys"]
    assert [
        [h, repr(k), v] for h, k, v in sketch.entries
    ] == GOLDEN["correlation_sketch"]["entries"]


def test_correlation_sketch_array_fast_path_equals_list_path():
    rng = np.random.default_rng(3)
    n = 500
    keys_list = [
        None if i % 17 == 0 else f"key-{int(rng.integers(0, 40))}"
        for i in range(n)
    ]
    values_arr = rng.normal(size=n)
    values_arr[::7] = np.nan
    keys_arr = np.empty(n, dtype=object)
    keys_arr[:] = keys_list
    fast = CorrelationSketch.build(keys_arr, values_arr, size=32, seed=17)
    slow = CorrelationSketch.build(keys_list, list(values_arr), size=32, seed=17)
    assert fast == slow


def test_golden_file_regenerates_identically():
    import tests.data.gen_seed_golden as gen

    recorded = (Path(__file__).parent / "data" / "seed_golden.json").read_text()
    tables = gen.golden_tables()
    fresh = {name: table_fingerprint(table) for name, table in tables.items()}
    assert fresh == json.loads(recorded)["table_fingerprints"]
