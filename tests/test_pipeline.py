"""The end-to-end responsible integration pipeline."""

import pytest

from respdi import ResponsibleIntegrationPipeline
from respdi.cleaning import MeanImputer
from respdi.datagen import make_source_tables, skewed_group_distributions
from respdi.discovery import DataLakeIndex
from respdi.errors import EmptyInputError
from respdi.requirements import (
    DistributionRepresentationRequirement,
    GroupRepresentationRequirement,
)
from respdi.tailoring import CountSpec, RandomPolicy


@pytest.fixture(scope="module")
def sources(health_population_module):
    population = health_population_module
    base = population.group_distribution()
    dists = skewed_group_distributions(
        base, 3, concentration=3.0, specialized={0: ("F", "black")}, rng=50
    )
    tables = make_source_tables(population, dists, 1500, rng=51)
    return {f"clinic{i}": t for i, t in enumerate(tables)}


@pytest.fixture(scope="module")
def health_population_module():
    from respdi.datagen.population import default_health_population

    return default_health_population(minority_fraction=0.2)


def test_full_run_produces_all_artifacts(health_population_module, sources):
    population = health_population_module
    spec = CountSpec(("gender", "race"), {g: 40 for g in population.groups})
    requirements = [
        GroupRepresentationRequirement(("gender", "race"), threshold=30),
        DistributionRepresentationRequirement(
            ("gender", "race"), {g: 0.25 for g in population.groups},
            max_divergence=0.2,
        ),
    ]
    pipeline = ResponsibleIntegrationPipeline(
        ("gender", "race"), target_column="y", imputers=[MeanImputer("x0")],
        coverage_threshold=30,
    )
    result = pipeline.run(sources, spec, requirements=requirements, rng=52)
    assert result.tailoring.satisfied
    assert len(result.table) == 160
    assert result.audit is not None and result.audit.passed
    assert result.fit_for_use
    assert result.label is not None
    assert result.datasheet is not None
    assert len(result.provenance) >= 5
    assert "tailoring" in result.render_provenance()
    assert sorted(result.sources_used) == sorted(sources)


def test_unsatisfied_run_documents_limitations(health_population_module, sources):
    population = health_population_module
    spec = CountSpec(("gender", "race"), {g: 40 for g in population.groups})
    pipeline = ResponsibleIntegrationPipeline(("gender", "race"), target_column="y")
    result = pipeline.run(sources, spec, budget=20, rng=53)
    assert not result.tailoring.satisfied
    assert not result.fit_for_use  # no audit ran
    limitations = result.datasheet.known_limitations
    assert any("deficits" in item for item in limitations)


def test_pipeline_with_custom_policy(health_population_module, sources):
    population = health_population_module
    spec = CountSpec(("gender", "race"), {g: 10 for g in population.groups})
    pipeline = ResponsibleIntegrationPipeline(
        ("gender", "race"), policy=RandomPolicy()
    )
    result = pipeline.run(sources, spec, rng=54)
    assert result.tailoring.satisfied
    assert "RandomPolicy" in result.provenance[0]


def test_pipeline_requires_sources(health_population_module):
    pipeline = ResponsibleIntegrationPipeline(("gender", "race"))
    spec = CountSpec(("gender", "race"), {("F", "black"): 1})
    with pytest.raises(EmptyInputError):
        pipeline.run({}, spec)


def test_discover_sources_from_lake(health_population_module, sources):
    population = health_population_module
    lake = DataLakeIndex(rng=0)
    for name, table in sources.items():
        lake.register(name, table)
    # A distractor without sensitive columns must be filtered out.
    from respdi.table import Schema, Table

    distractor = Table.from_rows(
        Schema([("foo", "categorical")]), [("bar",), ("baz",)]
    )
    lake.register("distractor", distractor)
    pipeline = ResponsibleIntegrationPipeline(("gender", "race"))
    query = population.sample(50, rng=55)
    discovered = pipeline.discover_sources(lake, query, k=6)
    assert set(discovered) == set(sources)
    for table in discovered.values():
        assert "gender" in table.schema and "race" in table.schema


def test_discover_sources_from_catalog(
    tmp_path, health_population_module, sources
):
    """discover_sources warm-starts straight from a CatalogStore."""
    from respdi.catalog import CatalogStore

    population = health_population_module
    store = CatalogStore.build(
        tmp_path / "cat", dict(sources), rng=0, store_data=True
    )
    pipeline = ResponsibleIntegrationPipeline(("gender", "race"))
    query = population.sample(50, rng=55)

    cold_lake = DataLakeIndex(rng=0)
    for name, table in sources.items():
        cold_lake.register(name, table)
    cold = pipeline.discover_sources(cold_lake, query, k=6)
    warm = pipeline.discover_sources(store, query, k=6)
    assert set(warm) == set(cold) == set(sources)
    for name in warm:
        assert warm[name].equals(cold[name])
