"""Population model: joint distributions, conditional sampling, bias knobs."""

import numpy as np
import pytest

from respdi.datagen.population import (
    PopulationModel,
    SensitiveAttribute,
    default_health_population,
)
from respdi.errors import SpecificationError


def test_sensitive_attribute_normalizes():
    attr = SensitiveAttribute("race", {"w": 3, "b": 1})
    assert attr.marginal == {"w": 0.75, "b": 0.25}
    assert attr.values == ("b", "w")


def test_joint_from_marginals(health_population):
    joint = health_population.group_distribution()
    assert sum(joint.values()) == pytest.approx(1.0)
    assert joint[("F", "black")] == pytest.approx(0.5 * 0.2)
    assert len(health_population.groups) == 4


def test_explicit_joint_overrides_product():
    gender = SensitiveAttribute("g", {"F": 0.5, "M": 0.5})
    race = SensitiveAttribute("r", {"w": 0.5, "b": 0.5})
    joint = {("F", "w"): 0.4, ("F", "b"): 0.1, ("M", "w"): 0.1, ("M", "b"): 0.4}
    pop = PopulationModel([gender, race], joint=joint, n_features=2)
    assert pop.group_probability(("F", "w")) == pytest.approx(0.4)


def test_joint_width_validated():
    gender = SensitiveAttribute("g", {"F": 1.0})
    with pytest.raises(SpecificationError, match="joint key"):
        PopulationModel([gender], joint={("F", "extra"): 1.0})


def test_schema_and_sampling(health_population, rng):
    table = health_population.sample(300, rng)
    assert len(table) == 300
    assert table.schema == health_population.schema()
    labels = set(np.unique(np.asarray(table.column("y"), dtype=float)))
    assert labels <= {0.0, 1.0}


def test_sample_matches_joint(health_population):
    table = health_population.sample(20000, rng=7)
    counts = table.group_counts(["gender", "race"])
    for group, probability in health_population.group_distribution().items():
        assert counts[group] / 20000 == pytest.approx(probability, abs=0.02)


def test_sample_conditional_single_group(health_population, rng):
    table = health_population.sample_conditional(("F", "black"), 50, rng)
    counts = table.group_counts(["gender", "race"])
    assert counts == {("F", "black"): 50}


def test_sample_conditional_unknown_group(health_population, rng):
    with pytest.raises(SpecificationError, match="unknown group"):
        health_population.sample_conditional(("X", "Y"), 5, rng)


def test_sample_biased_changes_mix_only(health_population):
    biased = {("F", "black"): 0.7, ("M", "white"): 0.3}
    table = health_population.sample_biased(5000, biased, rng=3)
    counts = table.group_counts(["gender", "race"])
    assert counts[("F", "black")] / 5000 == pytest.approx(0.7, abs=0.03)
    assert ("F", "white") not in counts


def test_sample_biased_unknown_group(health_population):
    with pytest.raises(SpecificationError, match="unknown groups"):
        health_population.sample_biased(10, {("alien", "alien"): 1.0}, rng=1)


def test_group_label_bias_shifts_positive_rate():
    pop_biased = default_health_population(
        minority_fraction=0.3, label_bias_against_minority=-2.0
    )
    pop_fair = default_health_population(
        minority_fraction=0.3, label_bias_against_minority=0.0
    )
    biased_rate = _positive_rate(pop_biased, ("F", "black"))
    fair_rate = _positive_rate(pop_fair, ("F", "black"))
    assert biased_rate < fair_rate - 0.1


def _positive_rate(population, group):
    table = population.sample_conditional(group, 4000, rng=9)
    return float(np.asarray(table.column("y"), dtype=float).mean())


def test_group_signal_zero_gives_identical_feature_means():
    gender = SensitiveAttribute("g", {"F": 0.5, "M": 0.5})
    pop = PopulationModel([gender], n_features=3, group_signal=0.0)
    f_table = pop.sample_conditional(("F",), 4000, rng=1)
    m_table = pop.sample_conditional(("M",), 4000, rng=2)
    for name in pop.feature_names:
        assert f_table.aggregate(name, "mean") == pytest.approx(
            m_table.aggregate(name, "mean"), abs=0.15
        )


def test_deterministic_given_seed(health_population):
    a = health_population.sample(100, rng=42)
    b = health_population.sample(100, rng=42)
    assert a.equals(b)


def test_validations():
    gender = SensitiveAttribute("g", {"F": 1.0})
    with pytest.raises(SpecificationError):
        PopulationModel([])
    with pytest.raises(SpecificationError):
        PopulationModel([gender], n_features=0)
    with pytest.raises(SpecificationError, match="label weights"):
        PopulationModel([gender], n_features=2, label_weights=[1.0])
    with pytest.raises(SpecificationError, match="unknown groups"):
        PopulationModel([gender], group_label_bias={("M",): 1.0})
    with pytest.raises(SpecificationError):
        default_health_population(minority_fraction=0.7)
