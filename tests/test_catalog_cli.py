"""respdi-catalog command line: build, add, query, serve, verify, exit codes."""

import io
import json
import sys

import pytest

from respdi import obs
from respdi.catalog.cli import main as catalog_main
from respdi.cli import catalog_main as wired_catalog_main
from respdi.datagen import LakeSpec, generate_lake
from respdi.service import reset_shared_services
from respdi.table import write_csv


@pytest.fixture(autouse=True)
def _fresh_shared_services():
    reset_shared_services()
    yield
    reset_shared_services()


@pytest.fixture(scope="module")
def lake_csvs(tmp_path_factory):
    directory = tmp_path_factory.mktemp("lakecsv")
    lake = generate_lake(LakeSpec(n_distractors=3), rng=11)
    paths = {}
    for name, table in lake.tables.items():
        path = directory / f"{name}.csv"
        write_csv(table, path)
        paths[name] = path
    return paths


@pytest.fixture
def catalog_dir(tmp_path, lake_csvs):
    directory = tmp_path / "cat"
    csvs = [str(lake_csvs[name]) for name in sorted(lake_csvs) if name != "query"]
    assert catalog_main(["build", str(directory), *csvs, "--seed", "7"]) == 0
    return directory


def test_build_and_info(catalog_dir, capsys):
    assert catalog_main(["info", str(catalog_dir)]) == 0
    out = capsys.readouterr().out
    assert "table(s):" in out
    assert "union_0" in out


def test_add_remove_refresh(catalog_dir, lake_csvs, capsys):
    assert catalog_main(["add", str(catalog_dir), str(lake_csvs["query"])]) == 0
    assert (
        catalog_main(["refresh", str(catalog_dir), str(lake_csvs["query"])]) == 0
    )
    assert "unchanged (hit)" in capsys.readouterr().out
    assert catalog_main(["remove", str(catalog_dir), "query"]) == 0
    # Removing again is a runtime error, not a crash.
    assert catalog_main(["remove", str(catalog_dir), "query"]) == 1


def test_query_keyword_union_join(catalog_dir, lake_csvs, capsys):
    query_csv = str(lake_csvs["query"])
    assert catalog_main(["query", str(catalog_dir), "--keyword", "union"]) == 0
    assert catalog_main(["query", str(catalog_dir), "--union", query_csv]) == 0
    capsys.readouterr()
    assert (
        catalog_main(
            ["query", str(catalog_dir), "--join", f"{query_csv}:key", "-k", "3"]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "joinable_" in out


def test_second_query_reopens_and_reverifies_nothing(catalog_dir, capsys):
    """Regression: ``query`` used to re-open (and re-checksum every entry
    of) the catalog on each invocation.  Routed through the shared
    QueryService, only the FIRST query in a process pays ``catalog.open``
    — later ones stat the manifest and reuse the pinned snapshot."""
    obs.enable()
    obs.reset()
    try:
        for _ in range(3):
            assert (
                catalog_main(
                    ["query", str(catalog_dir), "--keyword", "union", "--cached"]
                )
                == 0
            )
        counters = obs.global_registry().snapshot()["counters"]
        assert counters["catalog.open"] == 1.0
        assert counters["service.snapshot.pinned"] == 1.0
        # And the repeats were served straight from the result cache.
        assert counters["service.cache.miss"] == 1.0
        assert counters["service.cache.hit"] == 2.0
    finally:
        obs.disable()
        obs.reset()
    outputs = capsys.readouterr().out.splitlines()
    assert len(set(outputs)) * 3 == len(outputs)  # identical lines each run


def test_cached_and_uncached_query_print_identical_output(
    catalog_dir, lake_csvs, capsys
):
    query_csv = str(lake_csvs["query"])
    for mode in (["--union", query_csv], ["--keyword", "union"]):
        assert catalog_main(["query", str(catalog_dir), *mode]) == 0
        uncached = capsys.readouterr().out
        assert (
            catalog_main(["query", str(catalog_dir), *mode, "--cached"]) == 0
        )
        warm = capsys.readouterr().out
        assert (
            catalog_main(["query", str(catalog_dir), *mode, "--cached"]) == 0
        )
        hit = capsys.readouterr().out
        assert uncached == warm == hit
        assert uncached.strip()


def test_serve_subcommand_answers_json_lines(
    catalog_dir, lake_csvs, capsys, monkeypatch
):
    requests = [
        {"op": "ping"},
        {"op": "keyword", "text": "union", "k": 3},
        {"op": "union", "csv": str(lake_csvs["query"]), "k": 3},
        {"op": "stats"},
        {"op": "stop"},
    ]
    monkeypatch.setattr(
        sys,
        "stdin",
        io.StringIO("".join(json.dumps(r) + "\n" for r in requests)),
    )
    assert catalog_main(["serve", str(catalog_dir), "--cache-size", "16"]) == 0
    captured = capsys.readouterr()
    responses = [json.loads(line) for line in captured.out.splitlines()]
    assert [response["ok"] for response in responses] == [True] * 5
    assert responses[1]["results"]
    assert responses[3]["stats"]["maxsize"] == 16
    assert "served 5 request(s)" in captured.err


def test_serve_max_requests_and_no_cache(catalog_dir, capsys, monkeypatch):
    request = json.dumps({"op": "keyword", "text": "union", "k": 3})
    monkeypatch.setattr(sys, "stdin", io.StringIO(f"{request}\n" * 9))
    assert (
        catalog_main(
            ["serve", str(catalog_dir), "--no-cache", "--max-requests", "2"]
        )
        == 0
    )
    captured = capsys.readouterr()
    assert len(captured.out.splitlines()) == 2
    assert "served 2 request(s)" in captured.err


def test_verify_clean_and_corrupted(catalog_dir, capsys):
    assert catalog_main(["verify", str(catalog_dir)]) == 0
    assert "verified" in capsys.readouterr().out
    # Corrupt one entry file: verify must exit non-zero and name it.
    victim = next((catalog_dir / "entries").iterdir())
    target = victim / "columns.json"
    target.write_text(target.read_text() + " ")
    assert catalog_main(["verify", str(catalog_dir)]) == 2
    assert "CORRUPT" in capsys.readouterr().err


def test_add_with_label(catalog_dir, lake_csvs, capsys):
    assert (
        catalog_main(
            [
                "add",
                str(catalog_dir),
                str(lake_csvs["query"]),
                "--name",
                "labeled",
                "--sensitive",
                "q_c0",
                "--store-data",
            ]
        )
        == 0
    )
    assert catalog_main(["info", str(catalog_dir)]) == 0
    assert "[label, data]" in capsys.readouterr().out


def test_error_paths(tmp_path, capsys):
    assert catalog_main(["info", str(tmp_path / "missing")]) == 1
    assert "error:" in capsys.readouterr().err
    with pytest.raises(SystemExit):
        catalog_main(["query", str(tmp_path)])  # no query mode given


def test_console_script_wiring(catalog_dir):
    """respdi-catalog's pyproject entry point delegates to the same main."""
    assert wired_catalog_main(["verify", str(catalog_dir)]) == 0
