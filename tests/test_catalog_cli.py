"""respdi-catalog command line: build, add, query, verify, exit codes."""

import pytest

from respdi.catalog.cli import main as catalog_main
from respdi.cli import catalog_main as wired_catalog_main
from respdi.datagen import LakeSpec, generate_lake
from respdi.table import write_csv


@pytest.fixture(scope="module")
def lake_csvs(tmp_path_factory):
    directory = tmp_path_factory.mktemp("lakecsv")
    lake = generate_lake(LakeSpec(n_distractors=3), rng=11)
    paths = {}
    for name, table in lake.tables.items():
        path = directory / f"{name}.csv"
        write_csv(table, path)
        paths[name] = path
    return paths


@pytest.fixture
def catalog_dir(tmp_path, lake_csvs):
    directory = tmp_path / "cat"
    csvs = [str(lake_csvs[name]) for name in sorted(lake_csvs) if name != "query"]
    assert catalog_main(["build", str(directory), *csvs, "--seed", "7"]) == 0
    return directory


def test_build_and_info(catalog_dir, capsys):
    assert catalog_main(["info", str(catalog_dir)]) == 0
    out = capsys.readouterr().out
    assert "table(s):" in out
    assert "union_0" in out


def test_add_remove_refresh(catalog_dir, lake_csvs, capsys):
    assert catalog_main(["add", str(catalog_dir), str(lake_csvs["query"])]) == 0
    assert (
        catalog_main(["refresh", str(catalog_dir), str(lake_csvs["query"])]) == 0
    )
    assert "unchanged (hit)" in capsys.readouterr().out
    assert catalog_main(["remove", str(catalog_dir), "query"]) == 0
    # Removing again is a runtime error, not a crash.
    assert catalog_main(["remove", str(catalog_dir), "query"]) == 1


def test_query_keyword_union_join(catalog_dir, lake_csvs, capsys):
    query_csv = str(lake_csvs["query"])
    assert catalog_main(["query", str(catalog_dir), "--keyword", "union"]) == 0
    assert catalog_main(["query", str(catalog_dir), "--union", query_csv]) == 0
    capsys.readouterr()
    assert (
        catalog_main(
            ["query", str(catalog_dir), "--join", f"{query_csv}:key", "-k", "3"]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "joinable_" in out


def test_verify_clean_and_corrupted(catalog_dir, capsys):
    assert catalog_main(["verify", str(catalog_dir)]) == 0
    assert "verified" in capsys.readouterr().out
    # Corrupt one entry file: verify must exit non-zero and name it.
    victim = next((catalog_dir / "entries").iterdir())
    target = victim / "columns.json"
    target.write_text(target.read_text() + " ")
    assert catalog_main(["verify", str(catalog_dir)]) == 2
    assert "CORRUPT" in capsys.readouterr().err


def test_add_with_label(catalog_dir, lake_csvs, capsys):
    assert (
        catalog_main(
            [
                "add",
                str(catalog_dir),
                str(lake_csvs["query"]),
                "--name",
                "labeled",
                "--sensitive",
                "q_c0",
                "--store-data",
            ]
        )
        == 0
    )
    assert catalog_main(["info", str(catalog_dir)]) == 0
    assert "[label, data]" in capsys.readouterr().out


def test_error_paths(tmp_path, capsys):
    assert catalog_main(["info", str(tmp_path / "missing")]) == 1
    assert "error:" in capsys.readouterr().err
    with pytest.raises(SystemExit):
        catalog_main(["query", str(tmp_path)])  # no query mode given


def test_console_script_wiring(catalog_dir):
    """respdi-catalog's pyproject entry point delegates to the same main."""
    assert wired_catalog_main(["verify", str(catalog_dir)]) == 0
