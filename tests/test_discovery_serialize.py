"""npz persistence: round-trips, hasher binding, deterministic bytes."""

import numpy as np
import pytest

from respdi.discovery import (
    LSHEnsemble,
    MinHasher,
    load_npz,
    lshensemble_from_npz,
    lshensemble_to_npz,
    minhasher_from_npz,
    minhasher_to_npz,
    save_npz,
    signatures_from_npz,
    signatures_to_npz,
)
from respdi.errors import SpecificationError


@pytest.fixture
def hasher():
    return MinHasher(32, rng=5)


def test_save_npz_deterministic_bytes(tmp_path):
    arrays = {"x": np.arange(10, dtype=np.uint64), "y": np.eye(3)}
    save_npz(tmp_path / "a.npz", arrays)
    save_npz(tmp_path / "b.npz", dict(reversed(list(arrays.items()))))
    assert (tmp_path / "a.npz").read_bytes() == (tmp_path / "b.npz").read_bytes()
    loaded = load_npz(tmp_path / "a.npz")
    assert np.array_equal(loaded["x"], arrays["x"])
    assert np.array_equal(loaded["y"], arrays["y"])


def test_minhasher_roundtrip_same_signatures(tmp_path, hasher):
    minhasher_to_npz(tmp_path / "h.npz", hasher)
    loaded = minhasher_from_npz(tmp_path / "h.npz")
    assert loaded.fingerprint == hasher.fingerprint
    values = ["a", "b", "c", 4]
    assert np.array_equal(
        loaded.signature(values).values, hasher.signature(values).values
    )
    # Fresh identity: signatures from the two hashers must not be mixed.
    assert loaded.hasher_id != hasher.hasher_id


def test_minhasher_npz_rejects_garbage(tmp_path):
    save_npz(tmp_path / "h.npz", {"a": np.array([1], dtype=np.uint64)})
    with pytest.raises(SpecificationError):
        minhasher_from_npz(tmp_path / "h.npz")


def test_signatures_roundtrip_with_tuple_keys(tmp_path, hasher):
    signatures = {
        ("table", "col"): hasher.signature(["x", "y", "z"]),
        "plain": hasher.signature([1, 2, 3, 4]),
    }
    signatures_to_npz(tmp_path / "s.npz", signatures, hasher)
    loaded = signatures_from_npz(tmp_path / "s.npz", hasher)
    assert set(loaded) == {("table", "col"), "plain"}
    for key, signature in signatures.items():
        assert np.array_equal(loaded[key].values, signature.values)
        assert loaded[key].cardinality == signature.cardinality
        assert loaded[key].hasher_id == hasher.hasher_id


def test_signatures_reject_foreign_hasher(tmp_path, hasher):
    signatures = {"s": hasher.signature(["x", "y"])}
    signatures_to_npz(tmp_path / "s.npz", signatures, hasher)
    other = MinHasher(32, rng=6)
    with pytest.raises(SpecificationError, match="different MinHasher"):
        signatures_from_npz(tmp_path / "s.npz", other)


def test_signatures_reject_wrong_width(tmp_path, hasher):
    signatures_to_npz(tmp_path / "s.npz", {"s": hasher.signature([1, 2])}, hasher)
    arrays = load_npz(tmp_path / "s.npz")
    arrays["values"] = arrays["values"][:, :16]
    save_npz(tmp_path / "bad.npz", arrays)
    # Same fingerprint, truncated signature matrix: width check fires.
    with pytest.raises(SpecificationError, match="num_hashes"):
        signatures_from_npz(tmp_path / "bad.npz", hasher)


def test_empty_signature_family_roundtrips(tmp_path, hasher):
    signatures_to_npz(tmp_path / "s.npz", {}, hasher)
    assert signatures_from_npz(tmp_path / "s.npz", hasher) == {}


def test_lshensemble_roundtrip_same_queries(tmp_path, hasher):
    domains = {
        ("t1", "c1"): [f"v{i}" for i in range(100)],
        ("t2", "c1"): [f"v{i}" for i in range(40)],
        ("t3", "c9"): [f"w{i}" for i in range(200)],
    }
    ensemble = LSHEnsemble(hasher=hasher, num_partitions=2)
    for key, values in domains.items():
        ensemble.index(key, values)
    ensemble.freeze()
    lshensemble_to_npz(tmp_path / "e.npz", ensemble)

    query = [f"v{i}" for i in range(30)]
    expected = ensemble.query(query, 0.5)

    with_hasher = lshensemble_from_npz(tmp_path / "e.npz", hasher=hasher)
    assert with_hasher.query(query, 0.5) == expected

    standalone = lshensemble_from_npz(tmp_path / "e.npz")
    assert standalone.query(query, 0.5) == expected


def test_lshensemble_from_npz_rejects_non_ensemble(tmp_path, hasher):
    signatures_to_npz(tmp_path / "s.npz", {"s": hasher.signature([1])}, hasher)
    with pytest.raises(SpecificationError, match="LSHEnsemble"):
        lshensemble_from_npz(tmp_path / "s.npz")


def test_unserializable_key_rejected(tmp_path, hasher):
    signatures = {frozenset({1}): hasher.signature([1, 2])}
    with pytest.raises(SpecificationError, match="not JSON-serializable"):
        signatures_to_npz(tmp_path / "s.npz", signatures, hasher)
