"""Disparate-impact repair."""

import numpy as np
import pytest

from respdi.cleaning import disparate_impact_repair, repair_all_features
from respdi.errors import SpecificationError
from respdi.stats import correlation_ratio
from respdi.table import Schema, Table


def shifted_table(seed=0, n_a=400, n_b=200, shift=3.0):
    rng = np.random.default_rng(seed)
    schema = Schema([("g", "categorical"), ("x", "numeric")])
    values = np.concatenate(
        [rng.normal(0, 1, n_a), rng.normal(shift, 1, n_b)]
    )
    groups = ["a"] * n_a + ["b"] * n_b
    return Table(schema, {"g": groups, "x": values})


def test_full_repair_removes_group_association():
    table = shifted_table()
    before = correlation_ratio(list(table.column("g")), table.column("x"))
    repaired = disparate_impact_repair(table, "x", ["g"], repair_level=1.0)
    after = correlation_ratio(
        list(repaired.column("g")), repaired.column("x")
    )
    assert before > 0.7
    assert after < 0.05


def test_within_group_order_preserved():
    table = shifted_table()
    repaired = disparate_impact_repair(table, "x", ["g"], repair_level=1.0)
    original = np.asarray(table.column("x"), dtype=float)
    fixed = np.asarray(repaired.column("x"), dtype=float)
    for group in ("a", "b"):
        idx = np.array([g == group for g in table.column("g")])
        original_order = np.argsort(original[idx])
        fixed_order = np.argsort(fixed[idx])
        assert np.array_equal(original_order, fixed_order)


def test_zero_repair_is_identity():
    table = shifted_table()
    repaired = disparate_impact_repair(table, "x", ["g"], repair_level=0.0)
    assert repaired.equals(table)


def test_partial_repair_interpolates():
    table = shifted_table()
    full = disparate_impact_repair(table, "x", ["g"], 1.0)
    half = disparate_impact_repair(table, "x", ["g"], 0.5)
    original = np.asarray(table.column("x"), dtype=float)
    full_values = np.asarray(full.column("x"), dtype=float)
    half_values = np.asarray(half.column("x"), dtype=float)
    assert np.allclose(half_values, 0.5 * original + 0.5 * full_values)


def test_association_monotone_in_repair_level():
    table = shifted_table()
    associations = []
    for level in (0.0, 0.5, 1.0):
        repaired = disparate_impact_repair(table, "x", ["g"], level)
        associations.append(
            correlation_ratio(list(repaired.column("g")), repaired.column("x"))
        )
    assert associations[0] > associations[1] > associations[2]


def test_missing_values_stay_missing():
    schema = Schema([("g", "categorical"), ("x", "numeric")])
    table = Table.from_rows(
        schema, [("a", 1.0), ("a", None), ("b", 5.0), ("b", 6.0)]
    )
    repaired = disparate_impact_repair(table, "x", ["g"])
    assert repaired.missing_mask("x").tolist() == [False, True, False, False]


def test_repair_all_features(health_table):
    repaired = repair_all_features(
        health_table, ["x0", "x1"], ["race"], repair_level=1.0
    )
    for column in ("x0", "x1"):
        association = correlation_ratio(
            list(repaired.column("race")), repaired.column(column)
        )
        assert association < 0.1
    # Untouched column keeps its values.
    assert np.allclose(
        np.asarray(repaired.column("x2"), dtype=float),
        np.asarray(health_table.column("x2"), dtype=float),
    )


def test_validations(health_table):
    with pytest.raises(SpecificationError):
        disparate_impact_repair(health_table, "x0", ["race"], repair_level=1.5)
    with pytest.raises(SpecificationError):
        disparate_impact_repair(health_table, "race", ["gender"])
    with pytest.raises(SpecificationError):
        disparate_impact_repair(health_table, "x0", [])
