"""The respdi-audit command line tool."""

import json

import pytest

from respdi.cli import main
from respdi.table import write_csv


@pytest.fixture
def csv_path(tmp_path, health_table):
    path = tmp_path / "data.csv"
    write_csv(health_table, path)
    return str(path)


def test_label_only_run(csv_path, capsys):
    code = main([csv_path, "--sensitive", "gender,race", "--target", "y"])
    assert code == 0
    out = capsys.readouterr().out
    assert "rows:" in out
    assert "feature informativeness" in out


def test_json_output(csv_path, tmp_path, capsys):
    json_path = tmp_path / "label.json"
    code = main(
        [csv_path, "--sensitive", "race", "--target", "y", "--json", str(json_path)]
    )
    assert code == 0
    with open(json_path) as handle:
        payload = json.load(handle)
    assert payload["sensitive_columns"] == ["race"]


def test_audit_pass_and_fail(csv_path, capsys):
    passing = main(
        [csv_path, "--sensitive", "gender,race", "--audit",
         "--coverage-threshold", "10"]
    )
    assert passing == 0
    assert "overall: PASS" in capsys.readouterr().out
    failing = main(
        [csv_path, "--sensitive", "gender,race", "--audit",
         "--coverage-threshold", "100000"]
    )
    assert failing == 2
    assert "overall: FAIL" in capsys.readouterr().out


def test_missing_file_errors(capsys):
    code = main(["/nonexistent.csv", "--sensitive", "race"])
    assert code == 1
    assert "error:" in capsys.readouterr().err


def test_types_flag_for_headerless_schema(tmp_path, health_table, capsys):
    path = tmp_path / "plain.csv"
    write_csv(health_table, path, include_types=False)
    code = main(
        [
            str(path),
            "--sensitive", "race",
            "--types",
            "categorical,categorical,numeric,numeric,numeric,numeric,numeric",
        ]
    )
    assert code == 0


def test_types_flag_wrong_arity(tmp_path, health_table, capsys):
    path = tmp_path / "plain.csv"
    write_csv(health_table, path, include_types=False)
    code = main([str(path), "--sensitive", "race", "--types", "categorical"])
    assert code == 1
