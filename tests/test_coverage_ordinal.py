"""Neighborhood-based coverage for continuous attributes."""

import numpy as np
import pytest

from respdi.coverage import OrdinalCoverage
from respdi.errors import EmptyInputError, SpecificationError
from respdi.table import Schema, Table


def cluster_table():
    rng = np.random.default_rng(0)
    # Dense cluster at origin, nothing beyond radius 5.
    points = rng.normal(0, 0.5, size=(200, 2))
    schema = Schema([("a", "numeric"), ("b", "numeric")])
    return Table(schema, {"a": points[:, 0], "b": points[:, 1]})


def test_point_coverage():
    coverage = OrdinalCoverage(cluster_table(), ["a", "b"], k=5, radius=1.0, standardize=False)
    assert coverage.is_covered([0.0, 0.0])
    assert not coverage.is_covered([50.0, 50.0])


def test_neighbor_counts_monotone_in_radius():
    table = cluster_table()
    tight = OrdinalCoverage(table, ["a", "b"], k=1, radius=0.2, standardize=False)
    wide = OrdinalCoverage(table, ["a", "b"], k=1, radius=2.0, standardize=False)
    point = np.array([[0.1, 0.1]])
    assert wide.neighbor_counts(point)[0] >= tight.neighbor_counts(point)[0]


def test_uncovered_fraction_bounds():
    coverage = OrdinalCoverage(cluster_table(), ["a", "b"], k=3, radius=1.0, standardize=False)
    inside = coverage.uncovered_fraction([-0.5, -0.5], [0.5, 0.5], rng=1)
    outside = coverage.uncovered_fraction([20, 20], [30, 30], rng=1)
    assert inside < 0.05
    assert outside == 1.0


def test_standardization_makes_radius_scale_free():
    rng = np.random.default_rng(3)
    schema = Schema([("a", "numeric"), ("b", "numeric")])
    data = rng.normal(0, 1, size=(300, 2))
    scaled = data * np.array([1000.0, 0.001])
    t1 = Table(schema, {"a": data[:, 0], "b": data[:, 1]})
    t2 = Table(schema, {"a": scaled[:, 0], "b": scaled[:, 1]})
    c1 = OrdinalCoverage(t1, ["a", "b"], k=5, radius=0.5)
    c2 = OrdinalCoverage(t2, ["a", "b"], k=5, radius=0.5)
    # The same standardized query point should see similar counts.
    assert c1.neighbor_counts([[0.0, 0.0]])[0] == c2.neighbor_counts([[0.0, 0.0]])[0]


def test_missing_rows_excluded():
    schema = Schema([("a", "numeric")])
    table = Table(schema, {"a": [0.0, None, 0.1, None]})
    coverage = OrdinalCoverage(table, ["a"], k=2, radius=0.5, standardize=False)
    assert coverage.is_covered([0.0])


def test_uncovered_data_points(health_table):
    coverage = OrdinalCoverage(health_table, ["x0", "x1"], k=3, radius=0.4)
    mask = coverage.uncovered_data_points(health_table)
    # Points of the indexed set are their own neighbors; most should be covered.
    assert mask.mean() < 0.5


def test_validations():
    table = cluster_table()
    with pytest.raises(SpecificationError):
        OrdinalCoverage(table, ["a"], k=0, radius=1.0)
    with pytest.raises(SpecificationError):
        OrdinalCoverage(table, ["a"], k=1, radius=0.0)
    with pytest.raises(SpecificationError):
        OrdinalCoverage(table, [], k=1, radius=1.0)
    empty = Table(Schema([("a", "numeric")]), {"a": [None, None]})
    with pytest.raises(EmptyInputError):
        OrdinalCoverage(empty, ["a"], k=1, radius=1.0)
    coverage = OrdinalCoverage(table, ["a", "b"], k=1, radius=1.0)
    with pytest.raises(SpecificationError, match="dims"):
        coverage.is_covered([0.0])
    with pytest.raises(SpecificationError, match="lo > hi"):
        coverage.uncovered_fraction([1, 1], [0, 0])
