"""Crash matrix for the service read path: kill serve startup anywhere.

The service is a *reader*: whatever step it dies at, the catalog on
disk must remain byte-for-byte the committed state — there is no
acceptable "new" state because a query path must never mutate.  The
matrix forks ``QueryService`` startup plus a batch of served requests
and kills the child at every ``service.*`` / ``catalog.*`` injection
point it crosses.

It also *documents* the cache-persistence story: there is none, by
design.  The result cache lives only in process memory, so the
kill-at-every-step trace contains zero filesystem write points — a
crash cannot tear cache state because no cache state ever reaches disk.

POSIX-only (``os.fork``); skipped elsewhere.
"""

import hashlib
import io
import json
import os

import pytest

from respdi.catalog import CatalogStore
from respdi.faults import CrashSimulator
from respdi.service import QueryService, serve
from respdi.table import Schema, Table

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="crash simulation needs os.fork (POSIX)"
)

SCHEMA = Schema([("key", "categorical"), ("value", "numeric")])
OPTS = dict(rng=7, num_hashes=16, sketch_size=16)


def _tables():
    out = {}
    for t in range(2):
        rows = [(f"t{t}_{i}", float(i)) for i in range(8)]
        out[f"table{t}"] = Table.from_rows(SCHEMA, rows)
    return out


def _catalog_bytes(catalog_dir):
    """Every file's checksum, lock file aside — the full committed state."""
    hashes = {}
    for path in sorted(catalog_dir.rglob("*")):
        if path.is_file() and path.name != "writer.lock":
            hashes[str(path.relative_to(catalog_dir))] = hashlib.blake2b(
                path.read_bytes(), digest_size=16
            ).hexdigest()
    return hashes


def _prepare(workdir):
    CatalogStore.build(workdir / "cat", _tables(), **OPTS)


def _serve_session(workdir):
    service = QueryService(workdir / "cat", cache_size=32)
    requests = [
        {"op": "ping"},
        {"op": "keyword", "text": "table0", "k": 3},
        {"op": "keyword", "text": "table0", "k": 3},  # a cache hit
        {"op": "join", "values": ["t0_1", "t1_2"], "k": 3},
        {"op": "containment", "values": ["t0_1"], "threshold": 0.2},
        {"op": "stats"},
        {"op": "stop"},
    ]
    stream = io.StringIO(
        "".join(json.dumps(request) + "\n" for request in requests)
    )
    serve(service, stream, io.StringIO())


def test_kill_serve_startup_at_every_step_never_mutates(tmp_path):
    reference_dir = tmp_path / "reference"
    reference_dir.mkdir()
    _prepare(reference_dir)
    committed = _catalog_bytes(reference_dir / "cat")
    assert committed  # the reference state is non-trivial

    def classify(workdir):
        survived = _catalog_bytes(workdir / "cat")
        if survived != committed:
            raise AssertionError(
                "read path mutated the catalog: "
                f"{sorted(set(survived) ^ set(committed))[:5]}"
            )
        store = CatalogStore.open(workdir / "cat")
        assert store.verify() == []
        return "old"

    simulator = CrashSimulator(
        _prepare,
        _serve_session,
        classify,
        points=("service.", "catalog.", "fsutil."),
        operation="serve",
    )
    report = simulator.run(tmp_path / "matrix")

    detail = "\n".join(
        f"  step {o.step:3d} @ {o.point}: {o.problem}" for o in report.corrupt
    )
    assert report.corrupt == [], f"{report.summary()}\n{detail}"
    # A reader has exactly one legal surviving state.
    assert set(report.states) == {"old"}, report.summary()
    # The matrix crossed the whole service surface, not a trivial slice.
    crossed = {outcome.point for outcome in report.outcomes}
    assert {
        "service.serve.start",
        "service.snapshot.pin",
        "service.cache.lookup",
        "service.cache.store",
        "service.serve.request",
    } <= crossed, sorted(crossed)
    assert len(report.outcomes) >= 10, report.summary()


def test_serve_session_takes_no_write_steps(tmp_path):
    """No cache persistence exists — provably: the full serve session
    (startup, pin, misses, hits, stats) crosses zero ``fsutil.`` write
    points, so there is no on-disk cache state a crash could tear."""
    simulator = CrashSimulator(
        _prepare,
        _serve_session,
        lambda workdir: "old",
        points=("fsutil.",),
        operation="serve-writes",
    )
    trace = simulator.record(tmp_path / "record")
    written = [point for point in trace if point.startswith("fsutil.")]
    assert written == [], f"read path touched disk via: {written}"


def test_crashed_reader_leaves_no_artifacts_for_the_next_one(tmp_path):
    """After any reader crash the catalog serves the next reader
    normally — nothing to recover, nothing to clean up."""
    _prepare(tmp_path)
    _serve_session(tmp_path)  # a full session, as a crashed one would start
    service = QueryService(tmp_path / "cat")
    out = io.StringIO()
    serve(
        service,
        io.StringIO(json.dumps({"op": "keyword", "text": "table1", "k": 3}) + "\n"),
        out,
    )
    response = json.loads(out.getvalue())
    assert response["ok"] and response["results"][0]["table"] == "table1"
