"""CatalogStore: warm/cold parity, integrity, refresh, and concurrency."""

import threading

import pytest

from respdi import obs
from respdi.catalog import CatalogStore, load_catalog_index, writer_lock
from respdi.catalog.store import table_fingerprint
from respdi.datagen import LakeSpec, generate_lake
from respdi.discovery import DataLakeIndex
from respdi.errors import (
    CatalogCorruptError,
    CatalogLockedError,
    SpecificationError,
)
from respdi.profiling import build_datasheet


@pytest.fixture(scope="module")
def lake_tables():
    return dict(generate_lake(LakeSpec(n_distractors=6), rng=3).tables)


@pytest.fixture
def cold_index(lake_tables):
    index = DataLakeIndex(rng=7)
    for name, table in lake_tables.items():
        index.register(name, table)
    return index


@pytest.fixture
def store(tmp_path, lake_tables):
    return CatalogStore.build(tmp_path / "cat", lake_tables, rng=7)


def test_warm_results_identical_to_cold(store, cold_index, lake_tables):
    warm = CatalogStore.open(store.directory).index()
    query = lake_tables["query"]

    assert warm.keyword_search("query", k=10) == cold_index.keyword_search(
        "query", k=10
    )
    assert warm.unionable_tables(query, k=10) == cold_index.unionable_tables(
        query, k=10
    )
    values = query.unique("q_c0")
    assert warm.joinable_columns(values, k=10) == cold_index.joinable_columns(
        values, k=10
    )
    assert warm.containment_search(values, 0.3) == cold_index.containment_search(
        values, 0.3
    )
    assert warm.discover_features(
        query, "key", "target", sensitive_column="q_c0"
    ) == cold_index.discover_features(
        query, "key", "target", sensitive_column="q_c0"
    )


def test_warm_start_reads_no_raw_data(store):
    warm = load_catalog_index(store.directory)
    assert set(warm.table_names) == set(store.names)
    # No data was stored, so raw-table access is empty — but every
    # sketch-backed query above still works.
    assert len(warm.tables) == 0


def test_stored_data_loads_lazily(tmp_path, lake_tables):
    store = CatalogStore.build(tmp_path / "cat", lake_tables, rng=7, store_data=True)
    warm = store.index()
    loaded = warm.tables["query"]
    assert loaded.equals(lake_tables["query"])


def test_roundtrip_table_and_fingerprint(tmp_path, lake_tables):
    store = CatalogStore.build(tmp_path / "cat", lake_tables, rng=7, store_data=True)
    name = store.names[0]
    assert table_fingerprint(store.table(name)) == table_fingerprint(
        lake_tables[name]
    )


def test_add_duplicate_and_remove(store, lake_tables):
    with pytest.raises(SpecificationError):
        store.add_table("query", lake_tables["query"])
    n = len(store)
    store.remove_table("query")
    assert len(store) == n - 1
    assert "query" not in store
    assert "query" not in store.index().table_names
    with pytest.raises(SpecificationError):
        store.remove_table("query")
    # Reopening sees the removal too (manifest was rewritten).
    assert "query" not in CatalogStore.open(store.directory)


def test_refresh_hit_and_rebuild(store, lake_tables):
    query = lake_tables["query"]
    assert store.refresh("query", query) is False
    changed = query.head(max(1, len(query) - 5))
    assert store.refresh("query", changed) is True
    assert store.verify() == []
    # The refreshed entry's fingerprint persists across reopen.
    reopened = CatalogStore.open(store.directory)
    assert (
        reopened._manifest["entries"]["query"]["fingerprint"]
        == table_fingerprint(changed)
    )


def test_refresh_counters(store, lake_tables, monkeypatch):
    obs.enable()
    obs.reset()
    try:
        store.refresh("query", lake_tables["query"])
        store.refresh("query", lake_tables["query"].head(10))
        snapshot = obs.global_registry().snapshot()
        counters = {
            name: value for name, value in snapshot.get("counters", {}).items()
        }
        assert counters.get("catalog.hit", 0) >= 1
        assert counters.get("catalog.rebuild", 0) >= 1
    finally:
        obs.disable()


def test_refresh_many_noop_schedules_zero_sketch_calls(
    store, lake_tables, monkeypatch
):
    """Regression: a no-op refresh must short-circuit on fingerprints and
    never schedule sketch work (it used to re-sketch via refresh loops)."""
    from respdi.catalog import store as store_module

    def _forbidden(*args, **kwargs):
        raise AssertionError("sketching was scheduled on a no-op refresh")

    monkeypatch.setattr(store_module, "build_table_artifacts", _forbidden)
    results = store.refresh_many(dict(lake_tables))
    assert results == {name: False for name in lake_tables}


def test_single_refresh_fingerprints_changed_table_exactly_once(
    store, lake_tables, monkeypatch
):
    """Regression: refresh used to fingerprint a changed table twice
    (once to detect the change, once more inside the entry writer)."""
    from respdi.catalog import store as store_module

    calls = []
    real = store_module.table_fingerprint

    def _counting(table):
        calls.append(table)
        return real(table)

    monkeypatch.setattr(store_module, "table_fingerprint", _counting)
    changed = lake_tables["query"].head(7)
    assert store.refresh("query", changed) is True
    assert len(calls) == 1


def test_refresh_many_rebuilds_only_changed_tables(store, lake_tables):
    tables = dict(lake_tables)
    changed_name = next(iter(tables))
    tables[changed_name] = tables[changed_name].head(
        max(1, len(tables[changed_name]) - 2)
    )
    results = store.refresh_many(tables, n_jobs=2)
    assert results[changed_name] is True
    assert sum(results.values()) == 1
    assert store.verify() == []
    # The rebuilt fingerprint is persisted; a second refresh is a no-op.
    assert store.refresh_many(tables) == {name: False for name in tables}


def test_refresh_many_unknown_table_rejected(store, lake_tables):
    with pytest.raises(SpecificationError):
        store.refresh_many({"nope": lake_tables["query"]})


def test_corrupted_entry_detected(store):
    name = store.names[0]
    record = store._manifest["entries"][name]
    target = store.directory / "entries" / record["dir"] / "sketches.npz"
    target.write_bytes(b"garbage" + target.read_bytes()[7:])
    problems = store.verify()
    assert any("sketches.npz" in problem for problem in problems)
    fresh = CatalogStore.open(store.directory)
    with pytest.raises(CatalogCorruptError):
        fresh.index()


def test_missing_entry_file_detected(store):
    name = store.names[0]
    record = store._manifest["entries"][name]
    (store.directory / "entries" / record["dir"] / "keyword.json").unlink()
    assert any("keyword.json" in problem for problem in store.verify())
    with pytest.raises(CatalogCorruptError):
        CatalogStore.open(store.directory).index()


def test_mixed_hasher_rejected(store):
    from respdi.discovery import MinHasher, minhasher_to_npz

    minhasher_to_npz(store.directory / "hasher.npz", MinHasher(128, rng=999))
    with pytest.raises(CatalogCorruptError):
        CatalogStore.open(store.directory)


def test_unknown_schema_version_rejected(store):
    import json

    manifest_path = store.directory / "MANIFEST.json"
    manifest = json.loads(manifest_path.read_text())
    manifest["schema_version"] = 999
    manifest_path.write_text(json.dumps(manifest))
    with pytest.raises(SpecificationError, match="schema_version"):
        CatalogStore.open(store.directory)


def test_open_nonexistent_directory(tmp_path):
    with pytest.raises(SpecificationError, match="not a catalog"):
        CatalogStore.open(tmp_path / "nope")


def test_create_twice_rejected(store, tmp_path):
    with pytest.raises(SpecificationError, match="already"):
        CatalogStore.create(store.directory)


def test_label_and_datasheet_roundtrip(tmp_path, small_table):
    sheet = build_datasheet(
        title="small",
        table=small_table,
        motivation="testing",
        collection_process="synthetic",
    )
    store = CatalogStore.create(tmp_path / "cat", rng=1)
    store.add_table(
        "small",
        small_table,
        description="tiny demo table",
        sensitive_columns=("race",),
        target_column=None,
        datasheet=sheet,
    )
    label = store.label("small")
    assert label is not None
    assert label.sensitive_columns == ("race",)
    loaded_sheet = store.datasheet("small")
    assert loaded_sheet is not None
    assert loaded_sheet.render() == sheet.render()
    # Tables without artifacts return None, not an error.
    store.add_table("plain", small_table.head(3))
    assert store.label("plain") is None
    assert store.datasheet("plain") is None


def test_writer_lock_contention(store, lake_tables):
    store.lock_timeout = 0.2
    with writer_lock(store.directory, timeout=1.0):
        with pytest.raises(CatalogLockedError):
            store.remove_table("query")
    # Lock released: the mutation now goes through.
    store.remove_table("query")


def test_stale_lock_broken(store):
    # A lock file owned by a dead pid must not block writers forever.
    (store.directory / "writer.lock").write_text("999999999")
    store.lock_timeout = 2.0
    store.remove_table("query")
    assert "query" not in store


def test_concurrent_readers(store, cold_index, lake_tables):
    query = lake_tables["query"]
    expected = cold_index.unionable_tables(query, k=5)
    errors = []

    def reader():
        try:
            warm = CatalogStore.open(store.directory).index()
            assert warm.unionable_tables(query, k=5) == expected
        except Exception as exc:  # pragma: no cover - surfaced via errors
            errors.append(exc)

    threads = [threading.Thread(target=reader) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []


def test_index_cache_and_invalidation(store, lake_tables):
    first = store.index()
    assert store.index() is first
    store.remove_table("query")
    second = store.index()
    assert second is not first
    assert "query" not in second.table_names


def test_cold_register_on_warm_index(store, lake_tables, small_table):
    """A warm index keeps working as a normal DataLakeIndex."""
    warm = store.index()
    warm.register("extra", small_table)
    assert "extra" in warm.table_names
    assert warm.tables["extra"].equals(small_table)


def test_entry_gc(store, lake_tables):
    entries_dir = store.directory / "entries"
    before = {child.name for child in entries_dir.iterdir()}
    store.remove_table("query")
    after = {child.name for child in entries_dir.iterdir()}
    assert len(after) == len(before) - 1


# -- orphan tmp hygiene (crash residue) ----------------------------------------


def _plant_tmp(path, age_seconds):
    import os
    import time

    path.write_bytes(b"half-written crash residue")
    stamp = time.time() - age_seconds
    os.utime(path, (stamp, stamp))
    return path


def test_open_sweeps_aged_orphan_tmps(store, monkeypatch):
    """Regression: tmp files orphaned by a crashed writer used to pile up
    forever; ``open`` now sweeps any older than the grace period, in the
    catalog root and inside entry directories."""
    root_tmp = _plant_tmp(store.directory / ".MANIFEST.json.abc123.tmp", 120.0)
    entry_dir = next((store.directory / "entries").iterdir())
    entry_tmp = _plant_tmp(entry_dir / ".meta.json.def456.tmp", 120.0)
    monkeypatch.setattr(CatalogStore, "tmp_sweep_grace", 60.0)

    obs.enable()
    obs.reset()
    try:
        reopened = CatalogStore.open(store.directory)
        counters = obs.global_registry().snapshot()["counters"]
        assert counters["catalog.orphans.swept"] == 2.0
    finally:
        obs.disable()
        obs.reset()
    assert not root_tmp.exists()
    assert not entry_tmp.exists()
    assert reopened.verify() == []  # residue never counted as corruption


def test_open_leaves_young_tmps_for_live_writers(store):
    """A tmp younger than the grace period may belong to a writer that is
    mid-flight right now — it must survive the sweep."""
    young = _plant_tmp(store.directory / ".MANIFEST.json.xyz789.tmp", 1.0)
    CatalogStore.open(store.directory)
    assert young.exists()
    young.unlink()


def test_verify_ignores_orphan_tmps_in_entry_dirs(store):
    """Entry checksums cover only manifest-listed files; crash residue in
    an entry directory must not fail verification."""
    entry_dir = next((store.directory / "entries").iterdir())
    _plant_tmp(entry_dir / ".sketches.npz.zz9.tmp", 1.0)
    assert store.verify() == []
    assert CatalogStore.open(store.directory).verify() == []
