"""Synthetic lake ground truth."""

import numpy as np
import pytest

from respdi.datagen import LakeSpec, generate_lake
from respdi.errors import SpecificationError
from respdi.stats import pearson_correlation


@pytest.fixture(scope="module")
def lake():
    return generate_lake(LakeSpec(n_distractors=10), rng=42)


def test_lake_contains_expected_tables(lake):
    assert lake.query_table in lake.tables
    for name in lake.unionable_truth:
        assert name in lake.tables
    for name in lake.join_truth:
        assert name in lake.tables
    assert sum(1 for n in lake.tables if n.startswith("distractor")) == 10


def test_planted_containment_is_exact(lake):
    query_values = lake.column_values(lake.query_table, lake.query_column)
    for name, containment in lake.unionable_truth.items():
        table = lake.tables[name]
        partner_column = [
            c for c in table.column_names if c.endswith("c0")
        ][0]
        partner_values = lake.column_values(name, partner_column)
        actual = len(query_values & partner_values) / len(query_values)
        assert actual == pytest.approx(containment, abs=0.01)


def test_planted_join_correlation_is_close(lake):
    query = lake.tables[lake.query_table]
    for name, rho in lake.join_truth.items():
        joined = query.join(lake.tables[name], on=["key"])
        actual = pearson_correlation(
            np.asarray(joined.column("target"), dtype=float),
            np.asarray(joined.column("feat"), dtype=float),
        )
        assert actual == pytest.approx(rho, abs=0.15)


def test_lake_is_reproducible():
    a = generate_lake(LakeSpec(n_distractors=3), rng=7)
    b = generate_lake(LakeSpec(n_distractors=3), rng=7)
    assert set(a.tables) == set(b.tables)
    for name in a.tables:
        assert a.tables[name].equals(b.tables[name])


def test_spec_validations():
    with pytest.raises(SpecificationError):
        LakeSpec(domain_size=100, vocab_size=50)
    with pytest.raises(SpecificationError):
        LakeSpec(planted_containments=(1.5,))
    with pytest.raises(SpecificationError):
        LakeSpec(planted_correlations=(2.0,))
