"""The five §2 requirement checks."""

import pytest

from respdi.datagen import inject_mar, inject_numeric_errors
from respdi.errors import SpecificationError
from respdi.profiling import build_datasheet
from respdi.requirements import (
    CompletenessCorrectnessRequirement,
    DistributionRepresentationRequirement,
    FeatureRequirement,
    GroupRepresentationRequirement,
    ScopeOfUseRequirement,
    audit_requirements,
)
from respdi.table import Table


def test_distribution_representation_pass_and_fail(health_population):
    target = health_population.group_distribution()
    representative = health_population.sample(3000, rng=1)
    check = DistributionRepresentationRequirement(
        ("gender", "race"), target, max_divergence=0.05, measure="tv"
    )
    assert check.audit(representative).passed
    skewed = health_population.sample_biased(
        3000, {("F", "white"): 0.9, ("M", "white"): 0.1}, rng=2
    )
    report = check.audit(skewed)
    assert not report.passed
    assert report.score > 0.05
    assert "tv=" in report.message


def test_distribution_measures(health_population):
    target = health_population.group_distribution()
    sample = health_population.sample(2000, rng=3)
    for measure in ("tv", "js", "kl"):
        check = DistributionRepresentationRequirement(
            ("gender", "race"), target, max_divergence=0.1, measure=measure
        )
        assert check.audit(sample).passed
    with pytest.raises(SpecificationError):
        DistributionRepresentationRequirement(("g",), {("a",): 1.0}, measure="L7")


def test_distribution_empty_table(health_population):
    check = DistributionRepresentationRequirement(
        ("gender", "race"), health_population.group_distribution()
    )
    empty = Table.empty(health_population.schema())
    report = check.audit(empty)
    assert not report.passed


def test_group_representation(health_population):
    domains = {"gender": ["F", "M"], "race": ["white", "black"]}
    check = GroupRepresentationRequirement(
        ("gender", "race"), threshold=30, expected_domains=domains
    )
    balanced = health_population.sample_biased(
        1000, {g: 0.25 for g in health_population.groups}, rng=4
    )
    assert check.audit(balanced).passed
    skewed = health_population.sample_biased(
        1000, {("F", "white"): 0.97, ("F", "black"): 0.03}, rng=5
    )
    report = check.audit(skewed)
    assert not report.passed
    assert report.details["mups"]
    # Men are entirely absent: only expected domains can reveal that.
    assert any("'M'" in mup for mup in report.details["mups"])


def test_group_representation_blind_without_domains(health_population):
    """Documented limitation: observed-domain coverage cannot detect a
    group that never occurs in the data at all."""
    skewed = health_population.sample_biased(
        1000, {("F", "white"): 0.5, ("F", "black"): 0.5}, rng=5
    )
    blind = GroupRepresentationRequirement(("gender", "race"), threshold=30)
    assert blind.audit(skewed).passed  # men invisible -> no MUP found
    seeing = GroupRepresentationRequirement(
        ("gender", "race"), threshold=30,
        expected_domains={"gender": ["F", "M"]},
    )
    assert not seeing.audit(skewed).passed


def test_feature_requirement(health_table):
    lenient = FeatureRequirement(
        ["x0", "x1", "x2", "x3"], "y", ("race",),
        min_informativeness=0.05, max_sensitive_association=0.95,
    )
    assert lenient.audit(health_table).passed
    strict = FeatureRequirement(
        ["x0", "x1", "x2", "x3"], "y", ("race",),
        max_sensitive_association=0.01,
    )
    report = strict.audit(health_table)
    assert not report.passed
    assert report.details["bias"]


def test_completeness_correctness(health_table):
    check = CompletenessCorrectnessRequirement(
        ["x0", "x1"], ("race",), max_missing_rate=0.05,
        max_group_missing_rate=0.1, max_outlier_rate=0.02,
    )
    assert check.audit(health_table).passed
    dirty, _ = inject_mar(health_table, "x0", "race", {"black": 0.4}, rng=6)
    report = check.audit(dirty)
    assert not report.passed
    assert "missing rate" in report.message


def test_completeness_catches_outliers(health_table):
    corrupted, _, _ = inject_numeric_errors(
        health_table, "x1", rate=0.1, magnitude=10.0, rng=7
    )
    check = CompletenessCorrectnessRequirement(
        ["x1"], ("race",), max_outlier_rate=0.01, outlier_threshold=4.0
    )
    report = check.audit(corrupted)
    assert not report.passed
    assert "outlier" in report.message


def test_scope_of_use(health_table):
    missing = ScopeOfUseRequirement(None)
    assert not missing.audit(health_table).passed
    sheet = build_datasheet(
        "d", health_table, motivation="m", collection_process="c",
        recommended_uses=["training"], known_limitations=["synthetic"],
    )
    partial = ScopeOfUseRequirement(sheet)
    report = partial.audit(health_table)
    assert not report.passed  # uses/distribution/maintenance sections absent
    sheet.add_answer("uses", "q", "a")
    sheet.add_answer("distribution", "q", "a")
    sheet.add_answer("maintenance", "q", "a")
    assert ScopeOfUseRequirement(sheet).audit(health_table).passed


def test_scope_of_use_demands_honesty(health_table):
    sheet = build_datasheet(
        "d", health_table, motivation="m", collection_process="c",
    )
    for section in ("uses", "distribution", "maintenance"):
        sheet.add_answer(section, "q", "a")
    report = ScopeOfUseRequirement(sheet).audit(health_table)
    assert not report.passed
    assert "limitations" in report.message


def test_audit_aggregation(health_population):
    table = health_population.sample_biased(
        800, {g: 0.25 for g in health_population.groups}, rng=8
    )
    checks = [
        GroupRepresentationRequirement(("gender", "race"), threshold=20),
        DistributionRepresentationRequirement(
            ("gender", "race"), {g: 0.25 for g in health_population.groups},
            max_divergence=0.1,
        ),
    ]
    audit = audit_requirements(table, checks)
    assert audit.passed
    assert audit.failures == []
    assert audit.report_for("group-representation").passed
    assert audit.report_for("nonexistent") is None
    assert "overall: PASS" in audit.render()
    with pytest.raises(SpecificationError):
        audit_requirements(table, [])
