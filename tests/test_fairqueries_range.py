"""Fairness-aware range queries, validated against a brute-force oracle."""

import itertools

import numpy as np
import pytest

from respdi.errors import SpecificationError
from respdi.fairqueries import fair_range_refinement, range_disparity
from respdi.table import Range, Schema, Table


def make_table(groups, values):
    schema = Schema([("g", "categorical"), ("x", "numeric")])
    return Table(schema, {"g": list(groups), "x": list(values)})


def brute_force_best(table, lo, hi, max_disparity):
    """Oracle: enumerate all value-pair candidate ranges."""
    values = sorted(set(np.asarray(table.column("x"), dtype=float)))
    original = table.filter(Range("x", lo, hi))
    original_ids = set(np.flatnonzero(Range("x", lo, hi).mask(table)))
    best = (-1.0, None)
    candidates = [(a, b) for a, b in itertools.product(values, values) if a <= b]
    candidates.append((values[0] - 2, values[0] - 1))  # empty range
    for a, b in candidates:
        mask = Range("x", a, b).mask(table)
        counts = {g: 0 for g in table.unique("g")}
        selected = np.flatnonzero(mask)
        for i in selected:
            counts[table.column("g")[i]] += 1
        disparity = max(counts.values()) - min(counts.values())
        if disparity > max_disparity:
            continue
        ids = set(selected)
        union = original_ids | ids
        similarity = len(original_ids & ids) / len(union) if union else 1.0
        if similarity > best[0] + 1e-12:
            best = (similarity, (a, b))
    return best


def test_matches_brute_force_oracle():
    rng = np.random.default_rng(0)
    for trial in range(8):
        n = 40
        groups = rng.choice(["a", "b"], size=n)
        values = np.round(rng.normal(0, 2, size=n), 1)
        table = make_table(groups, values)
        result = fair_range_refinement(table, "x", -1.0, 1.0, "g", max_disparity=2)
        oracle_similarity, _ = brute_force_best(table, -1.0, 1.0, 2)
        assert result.similarity == pytest.approx(oracle_similarity, abs=1e-9)
        assert result.disparity <= 2


def test_already_fair_query_unchanged():
    table = make_table(["a", "b"] * 10, list(range(20)))
    result = fair_range_refinement(table, "x", 0, 19, "g", max_disparity=1)
    assert result.similarity == 1.0
    assert result.disparity <= 1


def test_disparity_bound_sweep_tightens_similarity():
    rng = np.random.default_rng(1)
    groups = ["a"] * 150 + ["b"] * 50
    values = np.concatenate([rng.normal(0, 1, 150), rng.normal(3, 1, 50)])
    table = make_table(groups, values)
    similarities = []
    for bound in (100, 20, 5, 0):
        result = fair_range_refinement(table, "x", -1, 1, "g", max_disparity=bound)
        similarities.append(result.similarity)
        assert result.disparity <= bound
    assert similarities == sorted(similarities, reverse=True)


def test_relative_constraint():
    rng = np.random.default_rng(2)
    groups = ["a"] * 100 + ["b"] * 100
    values = np.concatenate([rng.normal(0, 1, 100), rng.normal(1, 1, 100)])
    table = make_table(groups, values)
    result = fair_range_refinement(
        table, "x", -1, 0.5, "g", max_disparity=0,
        relative=True, max_disparity_fraction=0.3,
    )
    size = sum(result.group_counts.values())
    assert result.disparity <= 0.3 * size + 1e-9


def test_empty_refinement_allowed():
    # Ten 'a' rows at 0..9 and one 'b' row far away at 100: any non-empty
    # range is unbalanced (a range reaching b must cross all of a), so
    # with max_disparity=0 only the empty refinement is fair.
    table = make_table(["a"] * 10 + ["b"], list(range(10)) + [100.0])
    result = fair_range_refinement(table, "x", 2, 5, "g", max_disparity=0)
    assert sum(result.group_counts.values()) == 0
    assert result.similarity == 0.0


def test_range_disparity_counts_absent_groups():
    table = make_table(["a"] * 5 + ["b"] * 5, list(range(10)))
    disparity, counts = range_disparity(table, "x", 0, 4, "g")
    assert counts == {"a": 5, "b": 0}
    assert disparity == 5


def test_missing_values_excluded():
    schema = Schema([("g", "categorical"), ("x", "numeric")])
    table = Table(schema, {"g": ["a", "b", None, "a"], "x": [1.0, 2.0, 3.0, None]})
    result = fair_range_refinement(table, "x", 0, 5, "g", max_disparity=1)
    assert sum(result.group_counts.values()) <= 2


def test_validations():
    table = make_table(["a", "b"], [1.0, 2.0])
    with pytest.raises(SpecificationError):
        fair_range_refinement(table, "g", 0, 1, "g", 1)
    with pytest.raises(SpecificationError):
        fair_range_refinement(table, "x", 5, 1, "g", 1)
    with pytest.raises(SpecificationError):
        fair_range_refinement(table, "x", 0, 1, "g", -1)


def test_result_predicate_roundtrip():
    table = make_table(["a", "b"] * 5, list(range(10)))
    result = fair_range_refinement(table, "x", 0, 9, "g", max_disparity=1)
    selected = table.filter(result.predicate("x"))
    counts = selected.value_counts("g")
    observed = max(counts.values()) - min(counts.values()) if counts else 0
    assert observed == result.disparity
