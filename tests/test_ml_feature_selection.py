"""Bias-capped feature selection."""

import numpy as np
import pytest

from respdi.errors import SpecificationError
from respdi.ml import select_features
from respdi.table import Schema, Table


@pytest.fixture
def engineered_table():
    """Four candidates with known roles:

    * ``good``  — informative, unbiased;
    * ``proxy`` — informative but a near-perfect group proxy;
    * ``clone`` — near-duplicate of ``good`` (redundant);
    * ``noise`` — uninformative.
    """
    rng = np.random.default_rng(0)
    n = 1000
    group = np.where(rng.random(n) < 0.3, "b", "a")
    signal = rng.normal(size=n)
    good = signal + 0.3 * rng.normal(size=n)
    proxy = np.where(group == "b", 3.0, -3.0) + 0.8 * signal
    clone = good + 0.05 * rng.normal(size=n)
    noise = rng.normal(size=n)
    target = signal + 0.2 * rng.normal(size=n)
    schema = Schema(
        [
            ("group", "categorical"),
            ("good", "numeric"),
            ("proxy", "numeric"),
            ("clone", "numeric"),
            ("noise", "numeric"),
            ("target", "numeric"),
        ]
    )
    return Table(
        schema,
        {
            "group": group,
            "good": good,
            "proxy": proxy,
            "clone": clone,
            "noise": noise,
            "target": target,
        },
    )


def test_proxy_rejected_good_selected(engineered_table):
    result = select_features(
        engineered_table,
        ["good", "proxy", "clone", "noise"],
        "target",
        ["group"],
        max_bias=0.3,
    )
    assert "proxy" in result.rejected_for_bias
    assert result.rejected_for_bias["proxy"] > 0.8
    assert "good" in result.selected
    assert "proxy" not in result.selected


def test_redundant_clone_ranks_after_good(engineered_table):
    result = select_features(
        engineered_table,
        ["good", "clone", "noise"],
        "target",
        ["group"],
        max_features=2,
        redundancy_penalty=0.9,
    )
    # good goes first; clone's marginal value is crushed by redundancy.
    assert result.selected[0] == "good"


def test_min_informativeness_drops_noise(engineered_table):
    result = select_features(
        engineered_table,
        ["good", "noise"],
        "target",
        ["group"],
        min_informativeness=0.3,
    )
    assert "noise" not in result.selected
    assert result.informativeness["noise"] < 0.3


def test_max_features_cap(engineered_table):
    result = select_features(
        engineered_table,
        ["good", "clone", "noise"],
        "target",
        ["group"],
        max_features=1,
        min_informativeness=0.0,
        redundancy_penalty=0.0,
    )
    assert len(result.selected) == 1


def test_loose_bias_cap_admits_proxy(engineered_table):
    result = select_features(
        engineered_table,
        ["proxy"],
        "target",
        ["group"],
        max_bias=1.0,
    )
    assert result.selected == ("proxy",)
    assert result.rejected_for_bias == {}


def test_validations(engineered_table):
    with pytest.raises(SpecificationError):
        select_features(engineered_table, [], "target", ["group"])
    with pytest.raises(SpecificationError):
        select_features(
            engineered_table, ["good"], "target", ["group"], max_bias=2.0
        )
    with pytest.raises(SpecificationError):
        select_features(
            engineered_table, ["good"], "target", ["group"], max_features=0
        )
