"""Strength-eval harness: edge cases, gains, payloads.

The degenerate inputs a quality harness must survive without a
division by zero or an ill-defined gain: an empty gold set, a view
that predicts nothing, and a view that links everything.
"""

import json

import pytest

from respdi.datagen.duplicates import generate_gold_registry
from respdi.errors import SpecificationError
from respdi.linkage import evaluate_strengths
from respdi.linkage.matching import FieldComparator
from respdi.table import ColumnType, Schema, Table

SCHEMA = Schema(
    [
        ("_entity", ColumnType.CATEGORICAL),
        ("group", ColumnType.CATEGORICAL),
        ("name", ColumnType.CATEGORICAL),
    ]
)


def _table(rows):
    return Table.from_rows(SCHEMA, rows)


class _AlwaysOne:
    """Picklable constant similarity: the link-everything comparator."""

    def __call__(self, a, b):
        return 1.0


# -- empty gold set ------------------------------------------------------------


def test_empty_gold_set_is_well_defined():
    table = _table([(None, "blue", "ann lee"), (None, "blue", "Ann  Lee")])
    report = evaluate_strengths(
        table, "_entity", ["name"], group_columns=["group"]
    )
    assert report.n_entities == 0
    assert report.gold_pairs == 0
    for view in report.views.values():
        assert view.entity_coverage == 1.0  # vacuous: nothing to cover
        assert view.quality.recall == 1.0
        assert view.group_coverage == {}
    assert all(gain == 0.0 for gain in report.coverage_gains.values())
    assert report.fuzzy_gain == 0.0
    json.dumps(report.to_payload())  # payload stays JSON-able
    report.render()


# -- zero predicted matches ----------------------------------------------------


def test_zero_predicted_matches_has_precision_one():
    # Distinct names that not even the fuzzy view links.
    table = _table(
        [
            ("e0", "blue", "aaaaaaa"),
            ("e0", "blue", "zzzzzzz"),
            ("e1", "green", "bcdefgh"),
        ]
    )
    report = evaluate_strengths(
        table, "_entity", ["name"], group_columns=["group"], threshold=0.99
    )
    for view in report.views.values():
        assert view.links.num_links == 0
        assert view.quality.precision == 1.0  # vacuous precision
        assert view.quality.recall == 0.0
        assert view.entity_coverage == 0.5  # e1 is a singleton: covered
    assert report.fuzzy_gain == 0.0
    assert report.nested


# -- link-everything view ------------------------------------------------------


def test_link_everything_view_hits_the_precision_floor():
    reg = generate_gold_registry(12, duplicates_per_entity=1, rng=3)
    n = reg.n_records
    all_pairs = n * (n - 1) // 2
    report = evaluate_strengths(
        reg.table,
        "_entity",
        ["name"],
        group_columns=["group"],
        strengths=("fuzzy",),
        threshold=0.5,  # _AlwaysOne scores 1.0: every candidate links
        window=n,  # neighborhood spans the table: closure links all
        comparators=[FieldComparator(column="name", similarity=_AlwaysOne())],
    )
    view = report.views["fuzzy"]
    assert view.links.num_links == all_pairs
    assert view.links.num_clusters == 1
    assert view.quality.precision == pytest.approx(reg.n_pairs / all_pairs)
    assert view.quality.recall == 1.0
    assert view.entity_coverage == 1.0
    assert report.coverage_gains == {}  # single strength: no steps


# -- gains ---------------------------------------------------------------------


def test_gains_are_nonnegative_and_keyed_by_stronger_strength():
    reg = generate_gold_registry(
        60, duplicates_per_entity=2, rng=17, group_intensity={"green": 1.4}
    )
    report = evaluate_strengths(
        reg.table, "_entity", ["name"], group_columns=["group"]
    )
    assert set(report.coverage_gains) == {"normalized", "fuzzy"}
    assert all(gain >= 0.0 for gain in report.coverage_gains.values())
    for gains in report.group_coverage_gains.values():
        assert all(gain >= 0.0 for gain in gains.values())
    assert report.fuzzy_gain == report.coverage_gains["fuzzy"]
    assert report.nested
    coverages = [report.views[s].entity_coverage for s in report.strengths]
    assert coverages == sorted(coverages)  # monotone by nesting


def test_strength_subset_evaluates_and_gains_follow_subset():
    reg = generate_gold_registry(30, duplicates_per_entity=1, rng=4)
    report = evaluate_strengths(
        reg.table, "_entity", ["name"], strengths=("exact", "fuzzy")
    )
    assert set(report.views) == {"exact", "fuzzy"}
    assert set(report.coverage_gains) == {"fuzzy"}


# -- validation ----------------------------------------------------------------


def test_strengths_must_be_an_ordered_subsequence():
    reg = generate_gold_registry(10, rng=1)
    with pytest.raises(SpecificationError):
        evaluate_strengths(
            reg.table, "_entity", ["name"], strengths=("fuzzy", "exact")
        )
    with pytest.raises(SpecificationError):
        evaluate_strengths(
            reg.table, "_entity", ["name"], strengths=("exact", "exact")
        )
    with pytest.raises(SpecificationError):
        evaluate_strengths(reg.table, "_entity", ["name"], strengths=())


def test_group_columns_must_be_categorical():
    reg = generate_gold_registry(10, rng=1)
    with pytest.raises(SpecificationError):
        evaluate_strengths(
            reg.table, "_entity", ["name"], group_columns=["age"]
        )


# -- coverage MUPs -------------------------------------------------------------


def test_uncovered_patterns_surface_unresolved_groups():
    # The exact view resolves almost nothing, so with a coverage
    # threshold above what it consolidates, groups surface as MUPs.
    reg = generate_gold_registry(
        40, duplicates_per_entity=1, rng=21, noise=None
    )
    report = evaluate_strengths(
        reg.table,
        "_entity",
        ["name"],
        group_columns=["group"],
        strengths=("exact",),
        coverage_threshold=30,
    )
    assert report.views["exact"].uncovered_patterns  # something uncovered
    payload = report.to_payload()
    assert payload["views"]["exact"]["uncovered_patterns"]


# -- payload / render ----------------------------------------------------------


def test_payload_round_trips_through_json():
    reg = generate_gold_registry(25, duplicates_per_entity=1, rng=6)
    report = evaluate_strengths(
        reg.table, "_entity", ["name"], group_columns=["group"]
    )
    payload = json.loads(json.dumps(report.to_payload(), sort_keys=True))
    assert payload["strengths"] == ["exact", "normalized", "fuzzy"]
    assert payload["nested"] is True
    for strength, view in payload["views"].items():
        assert view["strength"] == strength
        assert all(len(pair) == 2 for pair in view["links"])
    assert payload["fuzzy_gain"] == payload["coverage_gains"]["fuzzy"]


def test_render_mentions_every_strength_and_group():
    reg = generate_gold_registry(25, duplicates_per_entity=1, rng=6)
    report = evaluate_strengths(
        reg.table, "_entity", ["name"], group_columns=["group"]
    )
    text = report.render()
    for strength in ("exact", "normalized", "fuzzy"):
        assert strength in text
    assert "blue" in text and "green" in text
    assert "coverage gain by step" in text
