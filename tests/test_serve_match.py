"""Serve-path match differential — the PR's acceptance criterion.

A served ``match`` request (per-request ``match_strength`` field) must
return **byte-identical** results to evaluating the same view directly
in process, across {plain, 4-shard} × {no cache, memory cache} — eight
configurations per strength, one answer.  Matching is a pure function
of the request's own table, so the layout and cache tier can only
change *where* the work runs, never *what* comes back.
"""

import io
import json

import pytest

from respdi.catalog import CatalogStore
from respdi.catalog.sharding import ShardedCatalogStore
from respdi.datagen.duplicates import generate_gold_registry
from respdi.linkage import STRENGTH_ORDER, build_view
from respdi.service import (
    MatchQuery,
    QueryService,
    ShardedQueryService,
    serve,
)
from respdi.table import read_csv, write_csv

OPTS = dict(rng=7, num_hashes=16, sketch_size=16)


@pytest.fixture(scope="module")
def setup(tmp_path_factory):
    root = tmp_path_factory.mktemp("serve-match")
    reg = generate_gold_registry(
        40, duplicates_per_entity=2, rng=29, group_intensity={"green": 1.4}
    )
    csv_path = root / "dirty.csv"
    write_csv(reg.table, csv_path)
    seed = {"seed": reg.table.project(["group", "zip"])}
    CatalogStore.build(root / "plain", seed, **OPTS)
    ShardedCatalogStore.build(root / "sharded", seed, num_shards=4, **OPTS)
    return {
        "csv": csv_path,
        "layouts": {"plain": root / "plain", "sharded": root / "sharded"},
    }


def _requests(csv_path):
    reqs = []
    for strength in STRENGTH_ORDER:
        reqs.append(
            {
                "op": "match",
                "csv": str(csv_path),
                "match_strength": strength,
                "keys": ["name"],
            }
        )
    # Repeat one to drive the cache-hit path.
    reqs.append(dict(reqs[-1]))
    return reqs


def _serve_lines(service, csv_path):
    stream = io.StringIO(
        "".join(json.dumps(r) + "\n" for r in _requests(csv_path))
    )
    out = io.StringIO()
    serve(service, stream, out)
    return out.getvalue().splitlines()


def _direct_results(csv_path):
    table = read_csv(csv_path)
    rendered = []
    for strength in STRENGTH_ORDER:
        query = MatchQuery(table=table, strength=strength, keys=("name",))
        rendered.append(query.render(build_view(strength, ["name"]).link(table)))
    rendered.append(rendered[-1])
    return [json.dumps(r, sort_keys=True) for r in rendered]


def test_served_match_identical_to_direct_evaluation(setup):
    direct = _direct_results(setup["csv"])
    responses = {}
    for layout, directory in setup["layouts"].items():
        cls = ShardedQueryService if layout == "sharded" else QueryService
        for tier, cache_size in (("nocache", 0), ("memory", 32)):
            service = cls(directory, cache_size=cache_size)
            lines = _serve_lines(service, setup["csv"])
            assert all(json.loads(line)["ok"] for line in lines)
            served = [
                json.dumps(json.loads(line)["results"], sort_keys=True)
                for line in lines
            ]
            assert served == direct, f"{layout}/{tier} diverged from direct"
            responses[(layout, tier)] = lines
    assert len(responses) == 4

    # Within a layout, the full response lines (generation included)
    # must also agree across cache tiers.
    for layout in ("plain", "sharded"):
        assert responses[(layout, "nocache")] == responses[(layout, "memory")]


def test_served_links_are_nested_across_strengths(setup):
    service = QueryService(setup["layouts"]["plain"], cache_size=0)
    lines = _serve_lines(service, setup["csv"])
    link_sets = [
        {tuple(pair) for pair in json.loads(line)["results"][0]["links"]}
        for line in lines[:3]
    ]
    exact, normalized, fuzzy = link_sets
    assert exact <= normalized <= fuzzy
    assert len(exact) < len(normalized) < len(fuzzy)


def test_match_results_cache_under_the_memory_tier(setup):
    service = QueryService(setup["layouts"]["plain"], cache_size=32)
    _serve_lines(service, setup["csv"])
    stats = service.stats()
    assert stats["hits"] >= 1  # the repeated request hit the LRU


def test_match_query_fingerprint_is_content_addressed(setup):
    table = read_csv(setup["csv"])
    a = MatchQuery(table=table, strength="exact", keys=("name",))
    b = MatchQuery(table=read_csv(setup["csv"]), strength="exact", keys=("name",))
    assert a.fingerprint == b.fingerprint
    c = MatchQuery(table=table, strength="normalized", keys=("name",))
    d = MatchQuery(table=table, strength="exact", keys=("name", "zip"))
    assert len({a.fingerprint, c.fingerprint, d.fingerprint}) == 3
