"""Field comparators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from respdi.errors import SpecificationError
from respdi.linkage import (
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
    levenshtein_similarity,
    numeric_similarity,
    token_jaccard,
)


def test_levenshtein_known_values():
    assert levenshtein_distance("kitten", "sitting") == 3
    assert levenshtein_distance("", "abc") == 3
    assert levenshtein_distance("abc", "abc") == 0
    assert levenshtein_distance("abc", "acb") == 2


def test_levenshtein_similarity():
    assert levenshtein_similarity("abc", "abc") == 1.0
    assert levenshtein_similarity("abc", "xyz") == 0.0
    assert levenshtein_similarity(None, "abc") == 0.0
    assert levenshtein_similarity("", "") == 1.0
    assert levenshtein_similarity("abcd", "abcx") == pytest.approx(0.75)


def test_jaro_known_values():
    # Classic textbook examples.
    assert jaro_similarity("martha", "marhta") == pytest.approx(0.944, abs=0.001)
    assert jaro_similarity("dixon", "dicksonx") == pytest.approx(0.767, abs=0.001)
    assert jaro_similarity("abc", "abc") == 1.0
    assert jaro_similarity("abc", "xyz") == 0.0
    assert jaro_similarity(None, "abc") == 0.0


def test_jaro_winkler_boosts_prefix():
    plain = jaro_similarity("martha", "marhta")
    boosted = jaro_winkler_similarity("martha", "marhta")
    assert boosted > plain
    assert jaro_winkler_similarity("martha", "marhta") == pytest.approx(
        0.961, abs=0.001
    )
    with pytest.raises(SpecificationError):
        jaro_winkler_similarity("a", "a", prefix_scale=0.5)


def test_token_jaccard_order_insensitive():
    assert token_jaccard("john smith", "smith john") == 1.0
    assert token_jaccard("john smith", "john doe") == pytest.approx(1 / 3)
    assert token_jaccard("", "") == 1.0
    assert token_jaccard("a", "") == 0.0
    assert token_jaccard(None, "a") == 0.0


def test_numeric_similarity():
    assert numeric_similarity(5.0, 5.0) == 1.0
    assert numeric_similarity(0.0, 1.0, scale=1.0) == pytest.approx(0.3679, abs=1e-3)
    assert numeric_similarity(None, 1.0) == 0.0
    assert numeric_similarity(float("nan"), 1.0) == 0.0
    with pytest.raises(SpecificationError):
        numeric_similarity(1.0, 2.0, scale=0.0)


words = st.text(alphabet="abcdefg", min_size=0, max_size=12)


@given(a=words, b=words)
@settings(max_examples=150, deadline=None)
def test_similarity_bounds_and_symmetry(a, b):
    for fn in (levenshtein_similarity, jaro_similarity, jaro_winkler_similarity,
               token_jaccard):
        value = fn(a, b)
        assert 0.0 <= value <= 1.0 + 1e-12
        assert value == pytest.approx(fn(b, a))
    assert levenshtein_distance(a, b) == levenshtein_distance(b, a)


@given(a=words)
@settings(max_examples=80, deadline=None)
def test_identity_similarity(a):
    assert levenshtein_similarity(a, a) == 1.0
    assert jaro_similarity(a, a) == 1.0
    assert token_jaccard(a, a) == 1.0


@given(a=words, b=words, c=words)
@settings(max_examples=80, deadline=None)
def test_levenshtein_triangle_inequality(a, b, c):
    assert levenshtein_distance(a, c) <= (
        levenshtein_distance(a, b) + levenshtein_distance(b, c)
    )


# -- canonicalization properties (the Normalized view's equality domain) ------

# Messy text: unicode letters with diacritics, punctuation, and spacing,
# exercising every branch of the canonicalizer.
messy = st.text(
    alphabet="aáàâbcçdeéèfgñoöABÉÑ .,-_'/();:0123456789\t",
    min_size=0,
    max_size=24,
)


@given(a=messy)
@settings(max_examples=200, deadline=None)
def test_canonicalize_is_idempotent(a):
    from respdi.linkage import canonicalize

    once = canonicalize(a)
    assert canonicalize(once) == once


@given(a=messy)
@settings(max_examples=150, deadline=None)
def test_canonicalize_is_case_space_and_order_insensitive(a):
    from respdi.linkage import canonicalize

    assert canonicalize(a.upper()) == canonicalize(a.lower())
    assert canonicalize(f"  {a}  ") == canonicalize(a)
    tokens = (canonicalize(a) or "").split()
    assert canonicalize(" ".join(reversed(tokens))) == canonicalize(a)


@given(a=messy, b=messy)
@settings(max_examples=150, deadline=None)
def test_canonical_similarity_bounds_symmetry_identity(a, b):
    from respdi.linkage import CanonicalSimilarity

    sim = CanonicalSimilarity(jaro_winkler_similarity)
    value = sim(a, b)
    assert 0.0 <= value <= 1.0 + 1e-12
    assert value == pytest.approx(sim(b, a))
    assert sim(a, a) == 1.0
    assert sim(None, b) == 0.0
