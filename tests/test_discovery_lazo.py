"""Lazo joint Jaccard/containment estimation."""

import pytest

from respdi.discovery import LazoSketch, MinHasher


@pytest.fixture
def hasher():
    return MinHasher(256, rng=5)


def test_containment_estimates(hasher):
    query = {f"v{i}" for i in range(100)}
    candidate = {f"v{i}" for i in range(80)} | {f"w{i}" for i in range(120)}
    qs = LazoSketch.build(query, hasher)
    cs = LazoSketch.build(candidate, hasher)
    estimate = qs.estimate(cs)
    # True: intersection 80, containment of query 0.8, of candidate 0.4.
    assert estimate.intersection == pytest.approx(80, abs=25)
    assert estimate.containment_of_query == pytest.approx(0.8, abs=0.15)
    assert estimate.containment_of_candidate == pytest.approx(0.4, abs=0.15)


def test_full_containment(hasher):
    query = {f"v{i}" for i in range(50)}
    superset = {f"v{i}" for i in range(200)}
    estimate = LazoSketch.build(query, hasher).estimate(
        LazoSketch.build(superset, hasher)
    )
    assert estimate.containment_of_query == pytest.approx(1.0, abs=0.1)


def test_disjoint_sets(hasher):
    a = LazoSketch.build({f"a{i}" for i in range(60)}, hasher)
    b = LazoSketch.build({f"b{i}" for i in range(60)}, hasher)
    estimate = a.estimate(b)
    assert estimate.jaccard < 0.05
    assert estimate.containment_of_query < 0.1


def test_intersection_clamped_to_feasible(hasher):
    small = LazoSketch.build({"x"}, hasher)
    large = LazoSketch.build({"x"} | {f"y{i}" for i in range(500)}, hasher)
    estimate = small.estimate(large)
    assert estimate.intersection <= 1.0
    assert estimate.containment_of_query <= 1.0


def test_estimate_is_symmetric_in_jaccard(hasher):
    a = LazoSketch.build({f"v{i}" for i in range(100)}, hasher)
    b = LazoSketch.build({f"v{i}" for i in range(50, 150)}, hasher)
    assert a.estimate(b).jaccard == b.estimate(a).jaccard
