"""Data-market acquisition."""

import pytest

from respdi.acquisition import DataProvider, ModelImprovementAcquirer
from respdi.datagen.population import default_health_population
from respdi.errors import EmptyInputError, SpecificationError
from respdi.table import Eq


@pytest.fixture(scope="module")
def setting():
    population = default_health_population(minority_fraction=0.25, group_signal=1.5)
    initial = population.sample_biased(
        120,
        {g: (0.48 if g[1] == "white" else 0.02) for g in population.groups},
        rng=1,
    )
    pool = population.sample(3000, rng=2)
    validation = population.sample(1200, rng=3)
    candidates = {
        f"race={r}": Eq("race", r) for r in ("white", "black")
    }
    return population, initial, pool, validation, candidates


FEATURES = ["x0", "x1", "x2", "x3"]


def test_provider_serves_without_replacement(setting):
    _, _, pool, _, candidates = setting
    provider = DataProvider(pool, rng=4)
    first = provider.query(candidates["race=black"], 50)
    second = provider.query(candidates["race=black"], 50)
    assert len(first) == 50 and len(second) == 50
    assert provider.records_sold == 100
    # No record sold twice: draws are disjoint row sets.
    total_black = len(pool.filter(candidates["race=black"]))
    drained = provider.query(candidates["race=black"], total_black)
    assert len(drained) == total_black - 100


def test_provider_empty_result_when_exhausted(setting):
    _, _, pool, _, candidates = setting
    provider = DataProvider(pool, rng=5)
    total = len(pool.filter(candidates["race=black"]))
    provider.query(candidates["race=black"], total)
    empty = provider.query(candidates["race=black"], 10)
    assert len(empty) == 0


def test_provider_validations(setting):
    _, _, pool, _, candidates = setting
    provider = DataProvider(pool, rng=6)
    with pytest.raises(SpecificationError):
        provider.query(candidates["race=black"], 0)
    from respdi.table import Table

    with pytest.raises(EmptyInputError):
        DataProvider(Table.empty(pool.schema))


def test_acquisition_improves_model(setting):
    population, initial, pool, validation, candidates = setting
    provider = DataProvider(pool, rng=7)
    acquirer = ModelImprovementAcquirer(
        initial, candidates, FEATURES, "y", validation
    )
    result = acquirer.run(provider, budget=500, batch_size=100, rng=8)
    assert result.records_bought == 500
    assert result.final_accuracy >= result.initial_accuracy - 0.03
    assert result.accuracy_trajectory[0] == (0, result.initial_accuracy)


def test_explore_exploit_buys_useful_slices(setting):
    population, initial, pool, validation, candidates = setting
    provider = DataProvider(pool, rng=9)
    acquirer = ModelImprovementAcquirer(
        initial, candidates, FEATURES, "y", validation,
        strategy="explore_exploit",
    )
    result = acquirer.run(provider, budget=600, batch_size=100, rng=10)
    # The consumer starts minority-starved; the black slice is the novel one.
    assert result.predicate_usage["race=black"] >= result.predicate_usage["race=white"]


def test_round_robin_and_random_strategies(setting):
    population, initial, pool, validation, candidates = setting
    for strategy in ("round_robin", "random"):
        provider = DataProvider(pool, rng=11)
        acquirer = ModelImprovementAcquirer(
            initial, candidates, FEATURES, "y", validation, strategy=strategy
        )
        result = acquirer.run(provider, budget=200, batch_size=100, rng=12)
        assert result.records_bought == 200


def test_exhausted_predicates_terminate_run(setting):
    population, initial, pool, validation, _ = setting
    tiny = {"rare": Eq("race", "nonexistent")}
    provider = DataProvider(pool, rng=13)
    acquirer = ModelImprovementAcquirer(
        initial, tiny, FEATURES, "y", validation
    )
    result = acquirer.run(provider, budget=100, batch_size=10, rng=14)
    assert result.records_bought == 0


def test_validations(setting):
    population, initial, pool, validation, candidates = setting
    with pytest.raises(SpecificationError):
        ModelImprovementAcquirer(initial, {}, FEATURES, "y", validation)
    with pytest.raises(SpecificationError):
        ModelImprovementAcquirer(
            initial, candidates, FEATURES, "y", validation, strategy="psychic"
        )
    acquirer = ModelImprovementAcquirer(
        initial, candidates, FEATURES, "y", validation
    )
    with pytest.raises(SpecificationError):
        acquirer.run(DataProvider(pool, rng=15), budget=0)
