"""Imputation accuracy parity (Zhang & Long)."""

import numpy as np
import pytest

from respdi.cleaning import (
    GroupMeanImputer,
    MeanImputer,
    imputation_accuracy_parity,
    imputation_group_rmse,
)
from respdi.datagen import inject_mcar
from respdi.errors import EmptyInputError, SpecificationError
from respdi.table import Schema, Table


def shifted_groups_table(n_majority=200, n_minority=50, shift=4.0, seed=0):
    rng = np.random.default_rng(seed)
    schema = Schema([("g", "categorical"), ("x", "numeric")])
    values = np.concatenate(
        [rng.normal(0, 1, n_majority), rng.normal(shift, 1, n_minority)]
    )
    groups = ["maj"] * n_majority + ["min"] * n_minority
    return Table(schema, {"g": groups, "x": values})


def test_global_mean_imputation_fails_shifted_minority():
    table = shifted_groups_table()
    dirty, mask = inject_mcar(table, "x", 0.3, rng=1)
    clean = np.asarray(table.column("x"), dtype=float)
    out = MeanImputer("x").fit_transform(dirty)
    report = imputation_accuracy_parity(out, "x", clean, mask, ["g"])
    # Minority RMSE must be much worse: its values sit 'shift' away from
    # the global mean.
    assert report.group_rmse[("min",)] > report.group_rmse[("maj",)] + 1.0
    assert report.accuracy_parity_difference > 0.2
    assert report.worst_group == ("min",)


def test_group_mean_restores_parity():
    table = shifted_groups_table()
    dirty, mask = inject_mcar(table, "x", 0.3, rng=2)
    clean = np.asarray(table.column("x"), dtype=float)
    global_report = imputation_accuracy_parity(
        MeanImputer("x").fit_transform(dirty), "x", clean, mask, ["g"]
    )
    group_report = imputation_accuracy_parity(
        GroupMeanImputer("x", ["g"]).fit_transform(dirty), "x", clean, mask, ["g"]
    )
    assert (
        group_report.accuracy_parity_difference
        < global_report.accuracy_parity_difference
    )
    assert group_report.group_rmse[("min",)] < global_report.group_rmse[("min",)]


def test_group_rmse_zero_for_perfect_imputation():
    table = shifted_groups_table()
    dirty, mask = inject_mcar(table, "x", 0.2, rng=3)
    clean = np.asarray(table.column("x"), dtype=float)
    perfect = dirty.with_column("x", "numeric", clean)
    rmse = imputation_group_rmse(perfect, "x", clean, mask, ["g"])
    assert all(v == 0.0 for v in rmse.values())


def test_misaligned_inputs_rejected():
    table = shifted_groups_table()
    dirty, mask = inject_mcar(table, "x", 0.2, rng=4)
    clean = np.asarray(table.column("x"), dtype=float)
    dropped = dirty.head(10)
    with pytest.raises(SpecificationError, match="align"):
        imputation_group_rmse(dropped, "x", clean, mask, ["g"])


def test_no_injected_cells_rejected():
    table = shifted_groups_table()
    clean = np.asarray(table.column("x"), dtype=float)
    mask = np.zeros(len(table), dtype=bool)
    with pytest.raises(EmptyInputError):
        imputation_group_rmse(table, "x", clean, mask, ["g"])


def test_tolerance_validation():
    table = shifted_groups_table()
    dirty, mask = inject_mcar(table, "x", 0.2, rng=5)
    clean = np.asarray(table.column("x"), dtype=float)
    with pytest.raises(SpecificationError):
        imputation_accuracy_parity(dirty, "x", clean, mask, ["g"], tolerance=0.0)
