"""Divergence measures and distribution tests."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from respdi.errors import EmptyInputError, SpecificationError
from respdi.stats import (
    chi_square_goodness_of_fit,
    chi_square_uniformity,
    empirical_distribution,
    hellinger,
    js_divergence,
    kl_divergence,
    normalize_distribution,
    total_variation,
)


def test_normalize():
    assert normalize_distribution({"a": 2, "b": 2}) == {"a": 0.5, "b": 0.5}
    with pytest.raises(SpecificationError):
        normalize_distribution({"a": -1, "b": 2})
    with pytest.raises(SpecificationError):
        normalize_distribution({"a": 0})
    with pytest.raises(EmptyInputError):
        normalize_distribution({})


def test_empirical_distribution():
    dist = empirical_distribution(["a", "a", "b", "c"])
    assert dist == {"a": 0.5, "b": 0.25, "c": 0.25}
    with pytest.raises(EmptyInputError):
        empirical_distribution([])


def test_kl_known_value():
    p = {"a": 0.5, "b": 0.5}
    q = {"a": 0.9, "b": 0.1}
    expected = 0.5 * math.log(0.5 / 0.9) + 0.5 * math.log(0.5 / 0.1)
    assert kl_divergence(p, q) == pytest.approx(expected)


def test_kl_zero_for_identical():
    p = {"a": 0.3, "b": 0.7}
    assert kl_divergence(p, p) == 0.0


def test_kl_infinite_without_smoothing():
    assert kl_divergence({"a": 1.0}, {"b": 1.0}) == math.inf


def test_kl_smoothing_makes_finite():
    assert kl_divergence({"a": 1.0}, {"b": 1.0}, smoothing=1e-6) < math.inf


def test_kl_negative_smoothing_rejected():
    with pytest.raises(SpecificationError):
        kl_divergence({"a": 1.0}, {"a": 1.0}, smoothing=-1)


def test_tv_and_hellinger_known_values():
    p = {"a": 1.0}
    q = {"b": 1.0}
    assert total_variation(p, q) == 1.0
    assert hellinger(p, q) == pytest.approx(1.0)
    assert total_variation(p, p) == 0.0


def test_js_bounded_by_ln2():
    assert js_divergence({"a": 1.0}, {"b": 1.0}) == pytest.approx(math.log(2))


def test_chi_square_uniformity_detects_skew():
    _, p_uniform = chi_square_uniformity([100, 100, 100, 100])
    _, p_skewed = chi_square_uniformity([400, 10, 10, 10])
    assert p_uniform > 0.9
    assert p_skewed < 1e-6


def test_chi_square_gof_validations():
    with pytest.raises(SpecificationError, match="shape"):
        chi_square_goodness_of_fit([1, 2], [1.0])
    with pytest.raises(SpecificationError, match="sum to 1"):
        chi_square_goodness_of_fit([1, 2], [0.3, 0.3])
    with pytest.raises(EmptyInputError):
        chi_square_uniformity([])
    with pytest.raises(EmptyInputError):
        chi_square_goodness_of_fit([0, 0], [0.5, 0.5])


distributions = st.dictionaries(
    st.sampled_from(list("abcdef")),
    st.floats(0.01, 10.0),
    min_size=1,
    max_size=6,
).map(normalize_distribution)


@given(p=distributions, q=distributions)
@settings(max_examples=100, deadline=None)
def test_divergence_properties(p, q):
    assert kl_divergence(p, q, smoothing=1e-9) >= 0.0
    tv = total_variation(p, q)
    assert 0.0 <= tv <= 1.0
    assert tv == pytest.approx(total_variation(q, p))
    js = js_divergence(p, q)
    assert 0.0 <= js <= math.log(2) + 1e-9
    assert js == pytest.approx(js_divergence(q, p), abs=1e-9)
    h = hellinger(p, q)
    assert 0.0 <= h <= 1.0 + 1e-9


@given(p=distributions)
@settings(max_examples=50, deadline=None)
def test_self_divergence_is_zero(p):
    assert kl_divergence(p, p) == pytest.approx(0.0, abs=1e-12)
    assert total_variation(p, p) == pytest.approx(0.0, abs=1e-12)
    assert js_divergence(p, p) == pytest.approx(0.0, abs=1e-9)
