"""NumPy classifiers."""

import numpy as np
import pytest

from respdi.errors import EmptyInputError, NotFittedError, SpecificationError
from respdi.ml import GaussianNaiveBayes, KNNClassifier, LogisticRegression


def separable_data(n=300, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 2))
    y = (X[:, 0] + 0.5 * X[:, 1] > 0).astype(int)
    return X, y


@pytest.mark.parametrize(
    "model_factory",
    [LogisticRegression, GaussianNaiveBayes, lambda: KNNClassifier(k=7)],
)
def test_models_learn_separable_problem(model_factory):
    X, y = separable_data()
    model = model_factory().fit(X, y)
    accuracy = (model.predict(X) == y).mean()
    assert accuracy > 0.9


@pytest.mark.parametrize(
    "model_factory",
    [LogisticRegression, GaussianNaiveBayes, lambda: KNNClassifier(k=7)],
)
def test_predict_proba_in_unit_interval(model_factory):
    X, y = separable_data(seed=1)
    model = model_factory().fit(X, y)
    probabilities = model.predict_proba(X)
    assert (probabilities >= 0).all() and (probabilities <= 1).all()


def test_logreg_coefficients_point_the_right_way():
    X, y = separable_data(seed=2)
    model = LogisticRegression().fit(X, y)
    assert model.coef_[0] > 0
    assert abs(model.coef_[0]) > abs(model.coef_[1])


def test_logreg_l2_shrinks_coefficients():
    X, y = separable_data(seed=3)
    loose = LogisticRegression(l2=1e-6).fit(X, y)
    tight = LogisticRegression(l2=10.0).fit(X, y)
    assert np.linalg.norm(tight.coef_) < np.linalg.norm(loose.coef_)


def test_sample_weights_shift_decisions():
    """Upweighting the positive class raises predicted positives."""
    X, y = separable_data(seed=4)
    weights = np.where(y == 1, 10.0, 1.0)
    plain = LogisticRegression().fit(X, y)
    weighted = LogisticRegression().fit(X, y, sample_weight=weights)
    assert weighted.predict(X).mean() >= plain.predict(X).mean()


def test_gnb_weighted_priors():
    X, y = separable_data(seed=5)
    weights = np.where(y == 1, 5.0, 1.0)
    model = GaussianNaiveBayes().fit(X, y, sample_weight=weights)
    plain = GaussianNaiveBayes().fit(X, y)
    assert model.predict_proba(X).mean() > plain.predict_proba(X).mean()


def test_gnb_single_class_degenerate():
    X = np.array([[0.0], [1.0], [2.0]])
    y = np.array([1, 1, 1])
    model = GaussianNaiveBayes().fit(X, y)
    assert (model.predict(X) == 1).all()


def test_knn_memorizes_with_k1():
    X, y = separable_data(n=50, seed=6)
    model = KNNClassifier(k=1).fit(X, y)
    assert (model.predict(X) == y).all()


def test_not_fitted_errors():
    X, _ = separable_data(n=10)
    with pytest.raises(NotFittedError):
        LogisticRegression().predict(X)
    with pytest.raises(NotFittedError):
        GaussianNaiveBayes().predict(X)
    with pytest.raises(NotFittedError):
        KNNClassifier().predict(X)


def test_input_validations():
    X, y = separable_data(n=10)
    with pytest.raises(SpecificationError):
        LogisticRegression().fit(X, y[:-1])
    with pytest.raises(SpecificationError):
        LogisticRegression().fit(X, y + 5)
    with pytest.raises(EmptyInputError):
        LogisticRegression().fit(X[:0], y[:0])
    with pytest.raises(SpecificationError):
        LogisticRegression().fit(X, y, sample_weight=np.full(len(y), -1.0))
    with pytest.raises(SpecificationError):
        KNNClassifier(k=0)
    with pytest.raises(SpecificationError):
        LogisticRegression(l2=-1)
