"""Ripple join online aggregation."""

import numpy as np
import pytest

from respdi.errors import EmptyInputError, SpecificationError
from respdi.sampling import RippleJoin, full_join
from respdi.table import Schema, Table


def tables(seed=0, n=60):
    rng = np.random.default_rng(seed)
    keys = [f"k{i}" for i in range(6)]
    schema_l = Schema([("k", "categorical"), ("a", "numeric")])
    schema_r = Schema([("k", "categorical"), ("b", "numeric")])
    left = Table.from_rows(
        schema_l,
        [(keys[int(rng.integers(6))], float(rng.normal())) for _ in range(n)],
    )
    right = Table.from_rows(
        schema_r,
        [(keys[int(rng.integers(6))], float(rng.normal())) for _ in range(n)],
    )
    return left, right


def test_exact_at_exhaustion():
    left, right = tables()
    joined = full_join(left, right, ["k"])
    true_count = len(joined)
    true_sum = joined.aggregate("b", "sum")
    ripple = RippleJoin(left, right, "k", expression=lambda a, b: b["b"], rng=1)
    trajectory = ripple.run()
    final = trajectory[-1]
    assert final.count_estimate == pytest.approx(true_count)
    assert final.sum_estimate == pytest.approx(true_sum)
    assert final.avg_estimate == pytest.approx(true_sum / true_count)
    assert ripple.exhausted


def test_estimates_converge():
    left, right = tables(seed=2, n=200)
    joined = full_join(left, right, ["k"])
    true_count = len(joined)
    ripple = RippleJoin(left, right, "k", rng=3)
    trajectory = ripple.run(record_every=40)
    early_error = abs(trajectory[0].count_estimate - true_count) / true_count
    late_error = abs(trajectory[-1].count_estimate - true_count) / true_count
    assert late_error <= early_error + 1e-9
    assert late_error == pytest.approx(0.0, abs=1e-9)


def test_partial_run_gives_reasonable_estimate():
    left, right = tables(seed=4, n=400)
    joined = full_join(left, right, ["k"])
    ripple = RippleJoin(left, right, "k", rng=5)
    trajectory = ripple.run(steps=400)  # half the tuples
    estimate = trajectory[-1].count_estimate
    assert estimate == pytest.approx(len(joined), rel=0.3)


def test_missing_keys_ignored():
    schema_l = Schema([("k", "categorical"), ("a", "numeric")])
    schema_r = Schema([("k", "categorical"), ("b", "numeric")])
    left = Table.from_rows(schema_l, [("x", 1.0), (None, 2.0)])
    right = Table.from_rows(schema_r, [("x", 3.0), (None, 4.0)])
    ripple = RippleJoin(left, right, "k", rng=6)
    final = ripple.run()[-1]
    assert final.count_estimate == pytest.approx(1.0)


def test_step_after_exhaustion_raises():
    left, right = tables(n=4)
    ripple = RippleJoin(left, right, "k", rng=7)
    ripple.run()
    with pytest.raises(EmptyInputError):
        ripple.step()


def test_validations():
    left, right = tables()
    with pytest.raises(SpecificationError):
        RippleJoin(left, right, "k").run(record_every=0)
    empty = Table.empty(left.schema)
    with pytest.raises(EmptyInputError):
        RippleJoin(empty, right, "k")


def test_avg_estimate_zero_when_no_count():
    left, right = tables()
    ripple = RippleJoin(left, right, "k", rng=8)
    estimate = ripple.estimate()
    assert estimate.avg_estimate == 0.0
