"""Crash matrix for the persistent result cache: kill the sidecar anywhere.

PR 5's matrix proved the serve path wrote *nothing*; this one proves the
deliberate exception — the pcache sidecar — writes *safely*.  A serve
session with a persistent cache is forked and killed at every
``service.pcache.*`` / ``service.*`` / ``fsutil.*`` step it crosses.
The survivor must satisfy, at every step:

* the catalog itself is byte-for-byte the committed state (the sidecar
  never leaks writes into the store);
* ``PersistentResultCache.verify()`` reports zero problems — a torn
  entry either does not exist (the tmp+fsync+rename discipline) or
  never parses as complete;
* every query served *after* the crash is byte-identical to a cold
  recompute — whatever the sidecar holds, it never changes an answer.

Plus the detection story the matrix cannot cover: deliberately corrupt
sidecar bytes are detected by checksum, discarded, counted, and the
rebuilt answer matches cold — corruption is repaired, never served.

POSIX-only (``os.fork``); skipped elsewhere.
"""

import hashlib
import io
import json
import os

import pytest

from respdi.catalog import CatalogStore
from respdi.faults import CrashSimulator
from respdi.service import QueryService, handle_request, open_pcache, serve
from respdi.service.pcache import PCACHE_DIRNAME
from respdi.table import Schema, Table

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="crash simulation needs os.fork (POSIX)"
)

SCHEMA = Schema([("key", "categorical"), ("value", "numeric")])
OPTS = dict(rng=7, num_hashes=16, sketch_size=16)

REQUESTS = [
    {"op": "keyword", "text": "table0", "k": 3},
    {"op": "keyword", "text": "table0", "k": 3},  # persistent hit
    {"op": "join", "values": ["t0_1", "t1_2"], "k": 3},
    {"op": "containment", "values": ["t0_1"], "threshold": 0.2},
]


def _tables():
    out = {}
    for t in range(2):
        rows = [(f"t{t}_{i}", float(i)) for i in range(8)]
        out[f"table{t}"] = Table.from_rows(SCHEMA, rows)
    return out


def _catalog_bytes(catalog_dir):
    """Checksums of the catalog proper — sidecar and lock file aside."""
    hashes = {}
    for path in sorted(catalog_dir.rglob("*")):
        if not path.is_file() or path.name == "writer.lock":
            continue
        if PCACHE_DIRNAME in path.relative_to(catalog_dir).parts:
            continue
        hashes[str(path.relative_to(catalog_dir))] = hashlib.blake2b(
            path.read_bytes(), digest_size=16
        ).hexdigest()
    return hashes


def _prepare(workdir):
    CatalogStore.build(workdir / "cat", _tables(), **OPTS)


def _serve_with_pcache(workdir):
    service = QueryService(workdir / "cat", cache_size=0)
    pcache = open_pcache(workdir / "cat")
    stream = io.StringIO(
        "".join(json.dumps(request) + "\n" for request in REQUESTS)
    )
    serve(service, stream, io.StringIO(), pcache=pcache)


def _cold_answers(catalog_dir):
    """Every request recomputed with no cache tier at all."""
    service = QueryService(catalog_dir, cache_size=0)
    return [
        json.dumps(handle_request(service, request), sort_keys=True)
        for request in REQUESTS
    ]


def test_kill_pcache_serve_at_every_step_zero_corrupt(tmp_path):
    reference_dir = tmp_path / "reference"
    reference_dir.mkdir()
    _prepare(reference_dir)
    committed = _catalog_bytes(reference_dir / "cat")
    cold = _cold_answers(reference_dir / "cat")

    def classify(workdir):
        # 1. The catalog is untouched whatever the sidecar was doing.
        if _catalog_bytes(workdir / "cat") != committed:
            raise AssertionError("pcache writes leaked into the catalog")
        store = CatalogStore.open(workdir / "cat")
        assert store.verify() == []
        # 2. No surviving sidecar entry is torn: every file that exists
        #    parses and checksums clean (atomic writes leave no middle).
        survivor = open_pcache(workdir / "cat")
        surviving_entries = len(survivor)  # before warm queries repopulate
        problems = survivor.verify()
        if problems:
            raise AssertionError(f"torn sidecar entries: {problems}")
        # 3. Post-crash answers — served through whatever the sidecar
        #    holds — are byte-identical to a cold recompute.
        service = QueryService(workdir / "cat", cache_size=0)
        warm = [
            json.dumps(
                handle_request(service, request, pcache=survivor),
                sort_keys=True,
            )
            for request in REQUESTS
        ]
        if warm != cold:
            raise AssertionError("post-crash warm answer diverged from cold")
        return "entries-%d" % surviving_entries

    simulator = CrashSimulator(
        _prepare,
        _serve_with_pcache,
        classify,
        points=("service.", "fsutil.", "catalog."),
        operation="serve-pcache",
    )
    report = simulator.run(tmp_path / "matrix")

    detail = "\n".join(
        f"  step {o.step:3d} @ {o.point}: {o.problem}" for o in report.corrupt
    )
    assert report.corrupt == [], f"{report.summary()}\n{detail}"
    crossed = {outcome.point for outcome in report.outcomes}
    assert {
        "service.pcache.lookup",
        "service.pcache.store",
        "service.pcache.sweep",
        "fsutil.tmp_written",
        "fsutil.fsync",
        "fsutil.renamed",
    } <= crossed, sorted(crossed)
    # Kills before/after entry persistence both occur: the matrix saw
    # sidecars in more than one completeness state, all of them healthy.
    assert len(set(report.states)) > 1, report.summary()


def test_pcache_serve_write_steps_are_exactly_the_sidecar(tmp_path):
    """With the sidecar enabled the serve session's only disk writes go
    through the atomic-write recipe, and all land inside pcache.d —
    provable from the fault-point trace plus the catalog checksums."""
    simulator = CrashSimulator(
        _prepare,
        _serve_with_pcache,
        lambda workdir: "ignored",
        points=("fsutil.",),
        operation="serve-pcache-writes",
    )
    trace = simulator.record(tmp_path / "record")
    written = [point for point in trace if point.startswith("fsutil.")]
    # 3 distinct query fingerprints -> exactly 3 atomic write sequences.
    assert written.count("fsutil.renamed") == 3
    assert set(written) <= {
        "fsutil.tmp_created",
        "fsutil.tmp_written",
        "fsutil.fsync",
        "fsutil.renamed",
    }
    committed = _catalog_bytes(tmp_path / "record" / "cat")
    _prepare(tmp_path / "fresh")
    assert committed == _catalog_bytes(tmp_path / "fresh" / "cat")


def test_corrupted_sidecar_detected_discarded_rebuilt_never_served(tmp_path):
    _prepare(tmp_path)
    _serve_with_pcache(tmp_path)  # populate the sidecar
    cold = _cold_answers(tmp_path / "cat")
    sidecar = tmp_path / "cat" / PCACHE_DIRNAME
    entries = sorted(sidecar.glob("*.json"))
    assert len(entries) == 3
    # Flip payload bytes in every entry — simulated bit rot across the
    # whole sidecar.
    for path in entries:
        entry = json.loads(path.read_text())
        entry["payload"] = [{"table": "attacker", "score": 1.0}]
        path.write_text(json.dumps(entry))

    pcache = open_pcache(tmp_path / "cat")
    assert len(pcache.verify()) == 3  # detection: verify sees every one
    service = QueryService(tmp_path / "cat", cache_size=0)
    warm = [
        json.dumps(
            handle_request(service, request, pcache=pcache), sort_keys=True
        )
        for request in REQUESTS
    ]
    assert warm == cold  # the tampered payloads were never served
    assert pcache.stats()["corrupt_discarded"] == 3
    assert pcache.stats()["stores"] == 3  # each key rebuilt in place
    assert pcache.verify() == []  # the sidecar healed
    # And the healed entries now serve as hits, still byte-identical.
    again = [
        json.dumps(
            handle_request(service, request, pcache=pcache), sort_keys=True
        )
        for request in REQUESTS
    ]
    assert again == cold and pcache.stats()["hits"] >= 3
