"""Coverage-based query rewriting."""

import numpy as np
import pytest

from respdi.errors import InfeasibleError, SpecificationError
from respdi.fairqueries import coverage_rewrite
from respdi.table import Schema, Table


def make_table(groups, values):
    schema = Schema([("g", "categorical"), ("x", "numeric")])
    return Table(schema, {"g": list(groups), "x": list(values)})


def test_rewrite_only_widens():
    table = make_table(["a"] * 10 + ["b"] * 10, list(range(20)))
    result = coverage_rewrite(table, "x", 3, 6, "g", min_count=3)
    assert result.lo <= 3 and result.hi >= 6
    assert all(count >= 3 for count in result.group_counts.values())


def test_rewrite_noop_when_already_covered():
    table = make_table(["a", "b"] * 10, list(range(20)))
    result = coverage_rewrite(table, "x", 0, 19, "g", min_count=5)
    assert result.added_rows == 0
    assert result.lo == 0 and result.hi == 19


def test_rewrite_expands_toward_cheaper_side():
    # Group b lives just above the range; just below lie many 'a' rows.
    groups = ["a"] * 50 + ["b"] * 5
    values = list(np.linspace(-10, -1, 50)) + [2.0, 2.1, 2.2, 2.3, 2.4]
    table = make_table(groups, values)
    result = coverage_rewrite(table, "x", -0.5, 1.0, "g", min_count=2)
    assert result.hi >= 2.1  # expanded up toward b
    assert result.group_counts["b"] >= 2


def test_rewrite_counts_reported():
    table = make_table(["a"] * 5 + ["b"] * 5, list(range(10)))
    result = coverage_rewrite(table, "x", 0, 4, "g", min_count=2)
    assert result.original_counts == {"a": 5, "b": 0}
    assert result.group_counts["b"] >= 2


def test_infeasible_when_group_too_small():
    table = make_table(["a"] * 10 + ["b"], list(range(11)))
    with pytest.raises(InfeasibleError, match="fewer than"):
        coverage_rewrite(table, "x", 0, 5, "g", min_count=3)


def test_validations():
    table = make_table(["a", "b"], [1.0, 2.0])
    with pytest.raises(SpecificationError):
        coverage_rewrite(table, "g", 0, 1, "g", 1)
    with pytest.raises(SpecificationError):
        coverage_rewrite(table, "x", 2, 1, "g", 1)
    with pytest.raises(SpecificationError):
        coverage_rewrite(table, "x", 0, 1, "g", 0)


def test_added_rows_is_minimal_for_simple_case():
    # b rows at 5 and 6; range [0,4] needs 1 b; nearest b costs 1 added row.
    groups = ["a"] * 5 + ["b", "b"]
    values = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
    table = make_table(groups, values)
    result = coverage_rewrite(table, "x", 0, 4, "g", min_count=1)
    assert result.added_rows == 1
    assert result.hi == 5.0
