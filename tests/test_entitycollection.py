"""Distribution-aware crowdsourced entity collection."""

import pytest

from respdi.entitycollection import (
    AdaptiveSelection,
    DirichletEstimator,
    EntityCollector,
    RandomSelection,
    SimulatedWorker,
    StaticSelection,
    make_worker_pool,
)
from respdi.errors import SpecificationError


def test_worker_submits_from_latent(rng):
    worker = SimulatedWorker("w", {"a": 1.0})
    assert worker.submit(rng) == "a"
    skewed = SimulatedWorker("w2", {"a": 0.9, "b": 0.1})
    draws = [skewed.submit(rng) for _ in range(500)]
    assert draws.count("a") / 500 == pytest.approx(0.9, abs=0.05)


def test_worker_pool_properties(rng):
    pool = make_worker_pool(list("abc"), 5, concentration=1.0, rng=rng)
    assert len(pool) == 5
    for worker in pool:
        assert sum(worker.latent.values()) == pytest.approx(1.0)
    with pytest.raises(SpecificationError):
        make_worker_pool([], 3)
    with pytest.raises(SpecificationError):
        make_worker_pool(["a"], 0)
    with pytest.raises(SpecificationError):
        make_worker_pool(["a"], 1, concentration=0)


def test_dirichlet_estimator_converges():
    estimator = DirichletEstimator(["a", "b"], alpha=1.0)
    prior = estimator.posterior_mean()
    assert prior == {"a": 0.5, "b": 0.5}
    for _ in range(80):
        estimator.observe("a")
    for _ in range(20):
        estimator.observe("b")
    posterior = estimator.posterior_mean()
    assert posterior["a"] == pytest.approx(0.8, abs=0.03)
    assert estimator.observations == 100
    assert estimator.counts() == {"a": 80, "b": 20}


def test_dirichlet_estimator_validations():
    estimator = DirichletEstimator(["a"], alpha=1.0)
    with pytest.raises(SpecificationError, match="unknown category"):
        estimator.observe("z")
    with pytest.raises(SpecificationError):
        DirichletEstimator([], alpha=1.0)
    with pytest.raises(SpecificationError):
        DirichletEstimator(["a"], alpha=0.0)


def specialized_pool():
    """One worker per category, perfectly specialized."""
    categories = list("abcd")
    return categories, [
        SimulatedWorker(f"w_{c}", {cat: (0.97 if cat == c else 0.01) for cat in categories})
        for c in categories
    ]


def test_adaptive_reaches_target_mix():
    categories, workers = specialized_pool()
    target = {"a": 0.4, "b": 0.3, "c": 0.2, "d": 0.1}
    collector = EntityCollector(workers, target, AdaptiveSelection())
    result = collector.run(300, rng=1)
    shares = {c: result.collected[c] / 300 for c in categories}
    for category, want in target.items():
        assert shares[category] == pytest.approx(want, abs=0.07)


def test_adaptive_beats_random_and_static():
    categories = list("abcde")
    workers = make_worker_pool(categories, 12, concentration=0.3, rng=2)
    target = {c: 0.2 for c in categories}
    results = {}
    for name, strategy in (
        ("adaptive", AdaptiveSelection()),
        ("random", RandomSelection()),
        ("static", StaticSelection()),
    ):
        collector = EntityCollector(workers, target, strategy)
        results[name] = collector.run(400, rng=3).final_kl
    assert results["adaptive"] < results["random"]
    assert results["adaptive"] <= results["static"] + 1e-6


def test_kl_trajectory_decreases():
    categories, workers = specialized_pool()
    target = {c: 0.25 for c in categories}
    collector = EntityCollector(workers, target, AdaptiveSelection())
    result = collector.run(200, rng=4)
    assert result.kl_trajectory[-1] < result.kl_trajectory[5]
    assert len(result.kl_trajectory) == 200


def test_static_uses_single_worker_after_warmup():
    categories, workers = specialized_pool()
    target = {"a": 1.0, "b": 0.0, "c": 0.0, "d": 0.0}
    collector = EntityCollector(workers, target, StaticSelection())
    result = collector.run(100, rng=5)
    # Worker w_a should take nearly all post-warmup rounds.
    assert result.worker_usage[0] >= 90


def test_collector_validations():
    categories, workers = specialized_pool()
    with pytest.raises(SpecificationError):
        EntityCollector([], {"a": 1.0}, AdaptiveSelection())
    collector = EntityCollector(workers, {"a": 1.0}, AdaptiveSelection())
    with pytest.raises(SpecificationError):
        collector.run(0)
