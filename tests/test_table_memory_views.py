"""Table memory introspection and zero-copy slicing semantics.

`memory_usage` follows the torcharrow ``NumericalColumn`` pattern:
shallow usage is the buffer extent each column actually views, deep
usage adds the payload of referenced python objects.  Zero-copy paths
(`project`, `rename`, contiguous `take`/`head`) must share buffers,
be guarded read-only, and never freeze the parent's arrays.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from respdi.table import ColumnSpec, ColumnType, Schema, Table

SCHEMA = Schema(
    [
        ColumnSpec("name", ColumnType.CATEGORICAL),
        ColumnSpec("x", ColumnType.NUMERIC),
    ]
)


def make_table(n=20):
    return Table(
        SCHEMA,
        {
            "name": [None if i % 5 == 0 else f"row-{i}" for i in range(n)],
            "x": [float("nan") if i % 7 == 0 else float(i) for i in range(n)],
        },
    )


# -- memory_usage -------------------------------------------------------------


def test_memory_usage_shallow_is_buffer_extent():
    table = make_table(16)
    usage = table.memory_usage()
    assert usage["x"] == 16 * 8
    assert usage["name"] == table.column("name").nbytes


def test_memory_usage_deep_adds_object_payload_for_categoricals_only():
    table = make_table(16)
    shallow = table.memory_usage()
    deep = table.memory_usage(deep=True)
    assert deep["x"] == shallow["x"]
    assert deep["name"] > shallow["name"]


def test_memory_usage_deep_counts_shared_objects_once():
    value = "shared-payload-string"
    table = Table(
        Schema([ColumnSpec("v", ColumnType.CATEGORICAL)]), {"v": [value] * 100}
    )
    single = Table(
        Schema([ColumnSpec("v", ColumnType.CATEGORICAL)]), {"v": [value]}
    )
    overhead = table.memory_usage(deep=True)["v"] - table.memory_usage()["v"]
    single_overhead = (
        single.memory_usage(deep=True)["v"] - single.memory_usage()["v"]
    )
    assert overhead == single_overhead


def test_memory_usage_empty_and_all_nan():
    empty = Table.empty(SCHEMA)
    assert empty.memory_usage(deep=True) == {"name": 0, "x": 0}
    allnan = Table(
        Schema([ColumnSpec("x", ColumnType.NUMERIC)]), {"x": [None] * 12}
    )
    assert allnan.memory_usage(deep=True)["x"] == 12 * 8


def test_memory_usage_shrinks_with_views():
    table = make_table(100)
    head = table.head(10)
    assert head.memory_usage()["x"] == 10 * 8
    assert head.memory_usage()["x"] < table.memory_usage()["x"]


@given(
    n=st.integers(1, 30),
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_memory_usage_monotone_under_take(n, data):
    table = make_table(n)
    subset = data.draw(
        st.lists(st.integers(0, n - 1), unique=True, max_size=n)
    )
    taken = table.take(subset)
    full = table.memory_usage(deep=True)
    small = taken.memory_usage(deep=True)
    for column in table.column_names:
        assert small[column] <= full[column]


# -- zero-copy views ----------------------------------------------------------


def test_project_shares_buffers_readonly():
    table = make_table()
    projected = table.project(["x"])
    assert np.shares_memory(projected.column("x"), table.column("x"))
    assert not projected.column("x").flags.writeable
    with pytest.raises(ValueError):
        projected.column("x")[0] = 99.0
    # The parent's own array is untouched by the guard.
    assert table.column("x").flags.writeable


def test_rename_shares_buffers_readonly():
    table = make_table()
    renamed = table.rename({"x": "y"})
    assert np.shares_memory(renamed.column("y"), table.column("x"))
    assert not renamed.column("y").flags.writeable


def test_contiguous_take_and_head_are_views():
    table = make_table(50)
    head = table.head(10)
    window = table.take(range(5, 25))
    for sliced in (head, window):
        for name in table.column_names:
            assert np.shares_memory(sliced.column(name), table.column(name))
            assert not sliced.column(name).flags.writeable
    assert head.equals(Table(SCHEMA, {
        "name": list(table.column("name")[:10]),
        "x": table.column("x")[:10].copy(),
    }))
    assert len(window) == 20
    assert window.row(0) == table.row(5)


def test_noncontiguous_take_still_copies():
    table = make_table(30)
    for indices in ([4, 2, 9], [1, 1, 2], [0, 2, 4], [-1, 0], []):
        taken = table.take(indices)
        expected = [table.row(int(i)) for i in np.asarray(indices, dtype=int)]
        got = list(taken.iter_rows())
        for row_got, row_exp in zip(got, expected):
            for a, b in zip(row_got, row_exp):
                assert (a != a and b != b) or a == b
        if len(indices):
            assert not np.shares_memory(taken.column("x"), table.column("x"))


def test_views_compose_and_stay_correct():
    table = make_table(40)
    view = table.head(30).project(["x"]).head(7)
    assert np.shares_memory(view.column("x"), table.column("x"))
    np.testing.assert_array_equal(
        view.column("x"), table.column("x")[:7]
    )
    # Derived operations on a read-only view produce fresh writable data.
    shuffled = view.shuffle(rng=0)
    assert shuffled.column("x").flags.writeable


def test_view_survives_parent_going_out_of_scope():
    head = make_table(25).head(5)
    assert float(np.nansum(head.column("x"))) == 1.0 + 2.0 + 3.0 + 4.0


# -- iter_rows / to_dicts preserve seed semantics -----------------------------


def test_iter_rows_matches_per_index_access():
    table = make_table(12)
    rows = list(table.iter_rows())
    assert len(rows) == 12
    for i, row in enumerate(rows):
        for value, expected in zip(row, table.row(i)):
            assert (value != value and expected != expected) or value == expected
    # Numeric cells keep their numpy scalar identity (repr-sorted
    # consumers depend on np.float64 reprs, not python float reprs).
    assert isinstance(rows[1][1], np.float64)


def test_iter_rows_empty_cases():
    assert list(Table.empty(SCHEMA).iter_rows()) == []
    assert Table.empty(SCHEMA).to_dicts() == []


def test_to_dicts_round_trip():
    table = make_table(9)
    rebuilt = Table.from_dicts(SCHEMA, table.to_dicts())
    assert rebuilt.equals(table)
