"""The crash matrix over multi-shard mutations.

Same power-loss model as ``tests/test_crash_consistency.py`` —
:class:`~respdi.faults.CrashSimulator` forks and ``os._exit``\\ s the
mutation at every injection point it crosses — but the operation now
fans out over shards, so the property sharpens: after any kill, **every
shard independently** holds a complete committed state (complete-old or
complete-new *per shard*), the shard map is whole or absent, and no
combination is torn.  Mixed survivors ("shard 0 committed, shard 1 not
yet") are *legal* — that is exactly the per-shard commit independence
the design promises — and the matrix asserts they actually occur, so
the test would catch a regression that silently re-coupled the shards
into one global commit as surely as one that tore them.

Readers are covered too: a pinned generation vector keeps answering
from its committed state while writers churn, and the query path itself
takes no write steps (killing at ``shard.gather`` is read-only).

POSIX-only (``os.fork``); skipped elsewhere.
"""

import os

import pytest

from respdi.catalog import CatalogStore, ShardedCatalogStore
from respdi.catalog.sharding import read_shard_spec
from respdi.errors import SpecificationError
from respdi.faults import CrashSimulator
from respdi.service import ContainmentQuery, KeywordQuery, ShardedQueryService
from respdi.table import Schema, Table

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="crash simulation needs os.fork (POSIX)"
)

SCHEMA = Schema([("key", "categorical"), ("value", "numeric")])

#: Small hash family keeps each of the dozens of forked re-runs cheap
#: without changing which injection points the operations cross.
OPTS = dict(rng=7, num_hashes=16, sketch_size=16)
NUM_SHARDS = 2
POINTS = ("shard.", "catalog.", "fsutil.")


def _table(tag, n=8, offset=0.0):
    rows = [(f"{tag}_{i}", float(i) + offset) for i in range(n)]
    return Table.from_rows(SCHEMA, rows)


TABLES = {f"table{t}": _table(f"t{t}") for t in range(6)}
CHANGED = {
    # One changed table per shard, so every shard takes a real commit
    # during refresh_many and kills can land between the two commits.
    "table0": _table("c0", n=5, offset=100.0),
    "table3": _table("c3", n=5, offset=200.0),
}


def _snapshot(catalog_dir):
    """Per-shard fingerprint maps (each shard verified), or ``"absent"``.

    A sharded catalog exists only once ``SHARDS.json`` does — it is
    written last during create, so "shard dirs but no map yet" is
    *absent*, not torn.  Any shard that opens but fails verification
    raises, which the simulator reports as a corrupt outcome.
    """
    try:
        spec = read_shard_spec(catalog_dir)
    except SpecificationError:
        return "absent"
    shards = []
    for dirname in spec["shards"]:
        store = CatalogStore.open(catalog_dir / dirname)
        problems = store.verify()
        assert problems == [], f"{dirname} corrupt after crash: {problems}"
        shards.append(
            {name: store.meta(name)["fingerprint"] for name in store.names}
        )
    return shards


def _per_shard_classifier(old_shards, new_shards):
    """Label each survivor by its per-shard states.

    Every shard must individually match its committed old or new state;
    the global label collapses to ``old`` / ``new`` when all shards
    agree and ``partial`` when the kill landed between shard commits —
    the legal mixed outcome unsharded catalogs cannot have.
    """

    def classify(workdir):
        snap = _snapshot(workdir / "cat")
        if snap == "absent":
            if old_shards == "absent":
                return "old"
            raise AssertionError("prepared catalog vanished after crash")
        labels = []
        for index, shard_snap in enumerate(snap):
            old = {} if old_shards == "absent" else old_shards[index]
            if shard_snap == old:
                labels.append("old")
            elif shard_snap == new_shards[index]:
                labels.append("new")
            else:
                raise AssertionError(
                    f"shard {index} holds no committed state: {shard_snap!r}"
                )
        if all(label == "new" for label in labels):
            return "new"
        if all(label == "old" for label in labels):
            return "old" if old_shards != "absent" else "created"
        return "partial"

    return classify


def _case_build():
    def prepare(workdir):
        pass  # nothing on disk: the mutation is the cold sharded build

    def mutate(workdir):
        ShardedCatalogStore.build(
            workdir / "cat", TABLES, num_shards=NUM_SHARDS, **OPTS
        )

    return prepare, mutate, "absent", "build"


def _case_refresh_many():
    def prepare(workdir):
        ShardedCatalogStore.build(
            workdir / "cat", TABLES, num_shards=NUM_SHARDS, **OPTS
        )

    def mutate(workdir):
        store = ShardedCatalogStore.open(workdir / "cat")
        flags = store.refresh_many(dict(CHANGED))
        assert flags == {"table0": True, "table3": True}

    return prepare, mutate, None, "refresh_many"


@pytest.mark.parametrize(
    "case", [_case_build, _case_refresh_many], ids=["build", "refresh_many"]
)
def test_kill_at_every_step_leaves_every_shard_committed(case, tmp_path):
    prepare, mutate, old_marker, operation = case()

    # Reference runs give the exact committed states; sharded builds are
    # byte-deterministic, so fingerprints transfer across directories.
    old_dir = tmp_path / "reference-old"
    old_dir.mkdir()
    prepare(old_dir)
    old_shards = old_marker or _snapshot(old_dir / "cat")
    new_dir = tmp_path / "reference-new"
    new_dir.mkdir()
    prepare(new_dir)
    mutate(new_dir)
    new_shards = _snapshot(new_dir / "cat")
    # The matrix only proves per-shard independence if the mutation
    # really commits on more than one shard.
    nonempty = [shard for shard in new_shards if shard]
    assert len(nonempty) == NUM_SHARDS, "tables must route to every shard"
    if old_shards != "absent":
        assert sum(o != n for o, n in zip(old_shards, new_shards)) >= 2

    simulator = CrashSimulator(
        prepare,
        mutate,
        _per_shard_classifier(old_shards, new_shards),
        points=POINTS,
        operation=operation,
    )
    report = simulator.run(tmp_path / "matrix")

    detail = "\n".join(
        f"  step {o.step:3d} @ {o.point}: {o.problem}" for o in report.corrupt
    )
    assert report.corrupt == [], f"{report.summary()}\n{detail}"
    states = report.states
    # Kills landed on both sides of the commits...
    assert states.get("new", 0) >= 1, report.summary()
    before = sum(count for state, count in states.items() if state != "new")
    assert before >= 1, report.summary()
    # ...and *between* them: some survivor has one shard new, one old —
    # the per-shard independence an unsharded store cannot exhibit.
    assert states.get("partial", 0) >= 1, report.summary()
    assert len(report.outcomes) >= 8, report.summary()


def test_pinned_vector_unaffected_by_concurrent_refresh(tmp_path):
    """A reader pinned to a generation vector keeps answering from its
    committed state while (and after) writers commit on any shard."""
    store = ShardedCatalogStore.build(
        tmp_path / "cat", TABLES, num_shards=NUM_SHARDS, **OPTS
    )
    service = ShardedQueryService(store)
    queries = [
        KeywordQuery(text="table0", k=5),
        ContainmentQuery(values=("t0_1", "t0_2"), threshold=0.2),
    ]
    pinned = service.snapshot()
    before = [repr(service._query_at(q, pinned, cached=False)) for q in queries]

    flags = store.refresh_many(dict(CHANGED))
    assert flags == {"table0": True, "table3": True}

    # The old vector still serves the old committed state, bit for bit.
    after_old = [
        repr(service._query_at(q, pinned, cached=False)) for q in queries
    ]
    assert after_old == before
    # A fresh pin sees the refresh (strictly newer on the touched shards).
    fresh = service.snapshot()
    assert fresh.generation != pinned.generation
    assert all(n >= o for n, o in zip(fresh.generation, pinned.generation))
    assert [
        repr(service._query_at(q, fresh, cached=False)) for q in queries
    ] != before


def test_query_path_takes_no_write_steps(tmp_path):
    """Killing a reader (e.g. at ``shard.gather``) is read-only by
    construction: a scatter-gather query's injection-point trace holds
    no write points at all."""

    def prepare(workdir):
        ShardedCatalogStore.build(
            workdir / "cat", TABLES, num_shards=NUM_SHARDS, **OPTS
        )

    def mutate(workdir):
        service = ShardedQueryService(
            ShardedCatalogStore.open(workdir / "cat")
        )
        result = service.query(KeywordQuery(text="table0", k=5))
        assert result  # the query really ran end to end

    simulator = CrashSimulator(
        prepare, mutate, lambda workdir: "read", points=POINTS, operation="query"
    )
    trace = simulator.record(tmp_path / "record")
    assert any(point.startswith("shard.gather") for point in trace)
    writes = [
        point
        for point in trace
        if point.startswith(("fsutil.", "catalog.commit", "shard.commit"))
    ]
    assert writes == []
