"""Keyword search over table metadata."""

import pytest

from respdi.discovery import KeywordIndex
from respdi.discovery.keyword import tokenize
from respdi.errors import EmptyInputError, SpecificationError
from respdi.table import Schema, Table


def make_table(columns):
    schema = Schema([(name, "categorical") for name in columns])
    height = max(len(v) for v in columns.values())
    return Table(
        schema,
        {
            name: [values[i % len(values)] for i in range(height)]
            for name, values in columns.items()
        },
    )


def test_tokenize():
    assert tokenize("Breast-Cancer_Records 2022!") == [
        "breast", "cancer", "records", "2022",
    ]
    assert tokenize("") == []


@pytest.fixture
def index():
    index = KeywordIndex()
    index.add_table(
        "chicago_health",
        make_table({"patient_race": ["white", "black"], "diagnosis": ["cancer", "flu"]}),
        description="Chicago patient health records",
    )
    index.add_table(
        "taxi_trips",
        make_table({"pickup_zone": ["loop", "ohare"]}),
        description="Chicago taxi trips",
    )
    index.add_table(
        "census",
        make_table({"race": ["white", "black"], "income_bracket": ["low", "high"]}),
    )
    return index


def test_search_ranks_relevant_first(index):
    hits = index.search("patient cancer health")
    assert hits[0].table_name == "chicago_health"


def test_shared_tokens_rank_multiple(index):
    hits = index.search("chicago")
    names = [h.table_name for h in hits]
    assert "chicago_health" in names and "taxi_trips" in names
    assert "census" not in names


def test_values_are_indexed(index):
    hits = index.search("ohare")
    assert hits[0].table_name == "taxi_trips"


def test_column_names_are_indexed(index):
    hits = index.search("income bracket")
    assert hits[0].table_name == "census"


def test_idf_downweights_common_tokens(index):
    # "race" appears in two tables; "diagnosis" only in one.
    hits = index.search("diagnosis")
    assert hits[0].table_name == "chicago_health"


def test_k_and_errors(index):
    assert len(index.search("chicago", k=1)) == 1
    with pytest.raises(SpecificationError):
        index.search("chicago", k=0)
    with pytest.raises(SpecificationError, match="tokens"):
        index.search("!!!")
    with pytest.raises(SpecificationError, match="already indexed"):
        index.add_table("census", make_table({"a": ["b"]}))
    empty = KeywordIndex()
    with pytest.raises(EmptyInputError):
        empty.search("x")


def test_no_match_returns_empty(index):
    assert index.search("zebra quantum") == []
