"""Schema construction, validation, and derivations."""

import pytest

from respdi.errors import SchemaError
from respdi.table import ColumnSpec, ColumnType, Schema


def test_schema_from_tuples_and_strings():
    schema = Schema([("a", "categorical"), ("b", "numeric")])
    assert schema.names == ("a", "b")
    assert schema.ctype("a") is ColumnType.CATEGORICAL
    assert schema.ctype("b") is ColumnType.NUMERIC


def test_schema_from_specs():
    schema = Schema([ColumnSpec("x", ColumnType.NUMERIC)])
    assert schema["x"].is_numeric


def test_duplicate_names_rejected():
    with pytest.raises(SchemaError, match="duplicate"):
        Schema([("a", "numeric"), ("a", "categorical")])


def test_unknown_type_string_rejected():
    with pytest.raises(SchemaError, match="unknown column type"):
        Schema([("a", "float64")])


def test_empty_name_rejected():
    with pytest.raises(SchemaError):
        Schema([("", "numeric")])


def test_getitem_unknown_column():
    schema = Schema([("a", "numeric")])
    with pytest.raises(SchemaError, match="unknown column"):
        schema["nope"]


def test_contains_and_len():
    schema = Schema([("a", "numeric"), ("b", "categorical")])
    assert "a" in schema
    assert "z" not in schema
    assert len(schema) == 2


def test_categorical_and_numeric_names():
    schema = Schema([("a", "numeric"), ("b", "categorical"), ("c", "numeric")])
    assert schema.numeric_names == ("a", "c")
    assert schema.categorical_names == ("b",)


def test_project_preserves_order_and_validates():
    schema = Schema([("a", "numeric"), ("b", "categorical"), ("c", "numeric")])
    projected = schema.project(["c", "a"])
    assert projected.names == ("c", "a")
    with pytest.raises(SchemaError):
        schema.project(["nope"])


def test_rename():
    schema = Schema([("a", "numeric"), ("b", "categorical")])
    renamed = schema.rename({"a": "x"})
    assert renamed.names == ("x", "b")
    assert renamed.ctype("x") is ColumnType.NUMERIC
    with pytest.raises(SchemaError):
        schema.rename({"nope": "y"})


def test_union_compatible():
    a = Schema([("a", "numeric")])
    b = Schema([("a", "numeric")])
    c = Schema([("a", "categorical")])
    assert a.union_compatible(b)
    assert not a.union_compatible(c)


def test_equality_and_hash():
    a = Schema([("a", "numeric")])
    b = Schema([("a", "numeric")])
    assert a == b
    assert hash(a) == hash(b)
    assert a != Schema([("b", "numeric")])


def test_require_reports_all_missing():
    schema = Schema([("a", "numeric")])
    with pytest.raises(SchemaError, match=r"\['x', 'y'\]"):
        schema.require(["x", "y"])
