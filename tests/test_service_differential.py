"""Service differential suite: cached == uncached == cold index, always.

Property-based (hypothesis) and cross-process checks of the service's
central invariant: for any catalog contents and any query, the answer
served from the cache is byte-identical to the uncached answer, which
is byte-identical to querying a cold
:class:`~respdi.discovery.lake_index.DataLakeIndex` built from the same
tables with the same hasher seed — across execution backends and across
``PYTHONHASHSEED`` values.  "Byte-identical" is enforced on ``repr``
(covers every float and every ordering) and, cross-process, on the
serve loop's rendered JSON lines.
"""

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from respdi.catalog import CatalogStore
from respdi.discovery import DataLakeIndex
from respdi.parallel import ExecutionContext
from respdi.service import (
    ContainmentQuery,
    JoinQuery,
    KeywordQuery,
    QueryService,
    UnionQuery,
)
from respdi.table import Schema, Table

SCHEMA = Schema([("key", "categorical"), ("value", "numeric")])
OPTS = dict(rng=7, num_hashes=16, sketch_size=16)
SRC = str(Path(__file__).resolve().parent.parent / "src")

#: Tiny closed vocabulary: collisions between tables (join/containment
#: overlap) and disjoint cases are both reachable within few examples.
_WORDS = ["ada", "bee", "cat", "doe", "elk", "fox"]

tables_strategy = st.dictionaries(
    st.sampled_from(["tab_a", "tab_b", "tab_c"]),
    st.lists(st.sampled_from(_WORDS), min_size=1, max_size=8),
    min_size=1,
    max_size=3,
)
values_strategy = st.lists(
    st.sampled_from(_WORDS), min_size=1, max_size=4, unique=True
)


def _table(values):
    rows = [(value, float(i)) for i, value in enumerate(values)]
    return Table.from_rows(SCHEMA, rows)


def _queries(values):
    return [
        KeywordQuery(text=values[0], k=5),
        UnionQuery(table=_table(values), k=5),
        JoinQuery(values=tuple(values), k=5),
        ContainmentQuery(values=tuple(values), threshold=0.2),
    ]


@given(raw_tables=tables_strategy, values=values_strategy)
@settings(max_examples=8, deadline=None)
def test_cached_uncached_and_cold_index_agree(raw_tables, values):
    tables = {name: _table(cells) for name, cells in raw_tables.items()}
    cold = DataLakeIndex(**OPTS)
    for name in sorted(tables):
        cold.register(name, tables[name])

    with tempfile.TemporaryDirectory() as tmp:
        store = CatalogStore.build(Path(tmp) / "cat", tables, **OPTS)
        for context in (
            ExecutionContext(),
            ExecutionContext(backend="threads", n_jobs=2, chunksize=1),
        ):
            service = QueryService(store, context=context)
            queries = _queries(values)
            uncached = [service.query(q, cached=False) for q in queries]
            missed = service.query_many(queries)  # first pass: all misses
            hit = service.query_many(queries)  # second pass: all hits
            direct = [query.run(cold) for query in queries]
            for query, a, b, c in zip(queries, uncached, missed, direct):
                assert repr(a) == repr(b) == repr(hit[queries.index(query)])
                assert repr(a) == repr(c), (
                    f"{query.kind} diverges from a cold index"
                )


@given(values=values_strategy)
@settings(max_examples=8, deadline=None)
def test_rendered_results_are_plain_json(values):
    """Whatever the query, ``render`` must produce data ``json.dumps``
    round-trips exactly — the serve loop's wire format."""
    tables = {"tab_a": _table(_WORDS), "tab_b": _table(values)}
    with tempfile.TemporaryDirectory() as tmp:
        store = CatalogStore.build(Path(tmp) / "cat", tables, **OPTS)
        service = QueryService(store)
        for query in _queries(values):
            rendered = query.render(service.query(query))
            assert json.loads(json.dumps(rendered)) == rendered


# -- PYTHONHASHSEED x backend matrix ------------------------------------------

_SCRIPT = r"""
import json, sys
from pathlib import Path

from respdi.catalog import CatalogStore
from respdi.parallel import ExecutionContext
from respdi.service import (
    ContainmentQuery, JoinQuery, KeywordQuery, QueryService, UnionQuery,
)
from respdi.table import Schema, Table

out_dir, backend = Path(sys.argv[1]), sys.argv[2]
schema = Schema([("key", "categorical"), ("value", "numeric")])

def table(tag, n):
    return Table.from_rows(
        schema, [(f"{tag}_{i % 5}", float(i)) for i in range(n)]
    )

tables = {"tab_a": table("a", 9), "tab_b": table("b", 7), "tab_c": table("a", 5)}
store = CatalogStore.build(
    out_dir / "cat", tables, rng=7, num_hashes=16, sketch_size=16
)
context = (
    ExecutionContext()
    if backend == "serial"
    else ExecutionContext(backend=backend, n_jobs=2, chunksize=1)
)
service = QueryService(store, context=context)
queries = [
    KeywordQuery(text="tab_a", k=5),
    UnionQuery(table=table("a", 4), k=5),
    JoinQuery(values=("a_1", "a_2", "b_3"), k=5),
    ContainmentQuery(values=("a_0", "a_1"), threshold=0.2),
]
lines = []
for cached in (False, True, True):  # uncached, miss, hit
    results = service.query_many(queries, cached=cached)
    lines.append(
        [query.render(result) for query, result in zip(queries, results)]
    )
fingerprints = [query.fingerprint for query in queries]
print(json.dumps({"passes": lines, "fingerprints": fingerprints}))
"""


def _serve_in_subprocess(tmp_path, backend, hash_seed):
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    out_dir = tmp_path / f"{backend}-{hash_seed}"
    out_dir.mkdir()
    result = subprocess.run(
        [sys.executable, "-c", _SCRIPT, str(out_dir), backend],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(result.stdout)


@pytest.mark.slow
def test_service_answers_identical_across_backends_and_hash_seeds(tmp_path):
    """Two hash seeds x two backends: rendered answers AND cache
    fingerprints must be bit-for-bit stable — salted ``hash()`` must not
    leak into either the results or the cache keys."""
    runs = {}
    for backend in ("serial", "threads"):
        for seed in ("1", "2"):
            runs[(backend, seed)] = _serve_in_subprocess(
                tmp_path, backend, seed
            )
    reference = runs[("serial", "1")]
    # Within one process: uncached pass == cache-miss pass == hit pass.
    assert (
        reference["passes"][0]
        == reference["passes"][1]
        == reference["passes"][2]
    )
    assert any(any(results) for results in reference["passes"][0])
    for key, run in runs.items():
        assert run == reference, f"{key} diverges from the serial baseline"
