"""The observability layer: metrics registry, spans, decorators, wiring."""

import json
import threading
import time

import numpy as np
import pytest

from respdi import ResponsibleIntegrationPipeline, obs
from respdi.cli import main as cli_main
from respdi.datagen import make_source_tables, skewed_group_distributions
from respdi.discovery.minhash import MinHasher
from respdi.obs import (
    InMemoryExporter,
    JsonLinesExporter,
    MetricsRegistry,
    counted,
    timed,
)
from respdi.table import write_csv
from respdi.tailoring import CountSpec


@pytest.fixture(autouse=True)
def clean_obs():
    """Every test starts and ends with observability off and empty."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()
    obs.set_exporter(InMemoryExporter())


@pytest.fixture
def exporter():
    exporter = InMemoryExporter()
    previous = obs.set_exporter(exporter)
    yield exporter
    obs.set_exporter(previous)


# -- registry -----------------------------------------------------------------


def test_registry_counters_gauges_histograms():
    registry = MetricsRegistry()
    registry.inc("a.count")
    registry.inc("a.count", 2.5)
    registry.set_gauge("a.level", 3.0)
    registry.set_gauge("a.level", 7.0)
    registry.observe("a.seconds", 0.5)
    registry.observe("a.seconds", 1.5)
    assert registry.counter_value("a.count") == 3.5
    assert registry.gauge_value("a.level") == 7.0
    summary = registry.histogram_summary("a.seconds")
    assert summary["count"] == 2
    assert summary["min"] == 0.5
    assert summary["max"] == 1.5
    assert summary["mean"] == 1.0
    assert list(registry.metric_names()) == ["a.count", "a.level", "a.seconds"]


def test_registry_snapshot_reset_and_json_round_trip():
    registry = MetricsRegistry()
    registry.inc("x")
    registry.observe("y", 2.0)
    payload = json.loads(registry.to_json())
    assert payload["counters"] == {"x": 1.0}
    assert payload["histograms"]["y"]["count"] == 1
    registry.reset()
    assert registry.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}
    assert registry.counter_value("x") == 0.0


def test_registry_timer_records_elapsed():
    registry = MetricsRegistry()
    with registry.timer("sleep.seconds"):
        time.sleep(0.01)
    summary = registry.histogram_summary("sleep.seconds")
    assert summary["count"] == 1
    assert summary["min"] >= 0.005


def test_registry_concurrent_increments_are_exact():
    registry = MetricsRegistry()
    threads_n, per_thread = 8, 2000

    def worker():
        for _ in range(per_thread):
            registry.inc("hits")
            registry.observe("vals", 1.0)

    threads = [threading.Thread(target=worker) for _ in range(threads_n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert registry.counter_value("hits") == threads_n * per_thread
    assert registry.histogram_summary("vals")["count"] == threads_n * per_thread


def test_module_helpers_are_noops_while_disabled():
    obs.inc("never.recorded")
    obs.set_gauge("never.gauge", 1.0)
    obs.observe("never.hist", 1.0)
    assert list(obs.global_registry().metric_names()) == []
    obs.enable()
    obs.inc("now.recorded")
    assert obs.global_registry().counter_value("now.recorded") == 1.0


# -- tracing ------------------------------------------------------------------


def test_span_nesting_depth_parent_and_finish_order(exporter):
    obs.enable()
    with obs.trace("outer", k=1) as outer:
        assert obs.current_span() is outer
        with obs.trace("inner") as inner:
            assert inner.depth == 1
            assert inner.parent_name == "outer"
            assert obs.current_span() is inner
        assert obs.current_span() is outer
    assert obs.current_span() is None
    names = [span["name"] for span in exporter.spans]
    assert names == ["inner", "outer"]  # inner finishes (and exports) first
    inner_dict, outer_dict = exporter.spans
    assert outer_dict["depth"] == 0 and outer_dict["parent"] is None
    assert inner_dict["depth"] == 1 and inner_dict["parent"] == "outer"
    assert outer_dict["attributes"] == {"k": 1}
    assert outer_dict["duration_s"] >= inner_dict["duration_s"]


def test_span_durations_feed_registry_and_errors_recorded(exporter):
    obs.enable()
    with pytest.raises(ValueError):
        with obs.trace("boom"):
            raise ValueError("nope")
    assert exporter.spans[0]["error"] == "ValueError"
    assert obs.global_registry().histogram_summary("boom.seconds")["count"] == 1


def test_trace_is_shared_noop_when_disabled(exporter):
    first = obs.trace("a")
    second = obs.trace("b")
    assert first is second  # shared singleton, no allocation
    with first:
        first.set_attribute("ignored", 1)
    assert exporter.spans == []
    assert list(obs.global_registry().metric_names()) == []


def test_jsonlines_exporter_round_trip(tmp_path):
    path = tmp_path / "spans.jsonl"
    obs.enable()
    with JsonLinesExporter(path) as exporter:
        previous = obs.set_exporter(exporter)
        try:
            with obs.trace("write.phase", rows=10):
                pass
            with obs.trace("write.phase", rows=20):
                pass
        finally:
            obs.set_exporter(previous)
    lines = path.read_text().strip().splitlines()
    assert len(lines) == 2
    records = [json.loads(line) for line in lines]
    assert [r["name"] for r in records] == ["write.phase", "write.phase"]
    assert [r["attributes"]["rows"] for r in records] == [10, 20]
    assert all(r["duration_s"] >= 0.0 for r in records)


# -- decorators ---------------------------------------------------------------


def test_timed_and_counted_record_when_enabled():
    @timed("deco.work")
    def work(x):
        return x + 1

    @counted("deco.calls", amount=2.0)
    def poke():
        return "ok"

    obs.enable()
    assert work(1) == 2
    assert poke() == "ok"
    registry = obs.global_registry()
    assert registry.histogram_summary("deco.work.seconds")["count"] == 1
    assert registry.counter_value("deco.work.calls") == 1.0
    assert registry.counter_value("deco.calls") == 2.0
    assert work.__name__ == "work" and work.__wrapped__(1) == 2


def test_timed_records_failures_too():
    @timed("deco.fail")
    def explode():
        raise RuntimeError("boom")

    obs.enable()
    with pytest.raises(RuntimeError):
        explode()
    registry = obs.global_registry()
    assert registry.counter_value("deco.fail.calls") == 1.0
    assert registry.histogram_summary("deco.fail.seconds")["count"] == 1


def test_decorators_are_silent_when_disabled():
    @timed("deco.quiet")
    def quiet():
        return 42

    assert quiet() == 42
    assert list(obs.global_registry().metric_names()) == []


def test_disabled_decorator_overhead_is_small():
    """Guard against the disabled path growing work beyond one flag check."""

    def body():
        return sum(range(200))

    wrapped = timed("deco.overhead")(body)

    def loop(fn, n=2000):
        best = float("inf")
        for _ in range(5):
            start = time.perf_counter()
            for _ in range(n):
                fn()
            best = min(best, time.perf_counter() - start)
        return best

    loop(body), loop(wrapped)  # warm up
    baseline = loop(body)
    instrumented = loop(wrapped)
    # Generous CI-safe bound; the real ≤5% claim is benchmarked in
    # benchmarks/bench_obs_overhead.py on MinHasher.signature.
    assert instrumented <= baseline * 2.0 + 1e-3


# -- wiring -------------------------------------------------------------------


@pytest.fixture
def pipeline_inputs(health_population):
    base = health_population.group_distribution()
    dists = skewed_group_distributions(base, 2, concentration=3.0, rng=60)
    tables = make_source_tables(health_population, dists, 400, rng=61)
    sources = {f"clinic{i}": t for i, t in enumerate(tables)}
    spec = CountSpec(("gender", "race"), {g: 10 for g in health_population.groups})
    return sources, spec


def test_pipeline_run_emits_stage_spans_and_metrics(pipeline_inputs, exporter):
    sources, spec = pipeline_inputs
    obs.enable()
    pipeline = ResponsibleIntegrationPipeline(("gender", "race"))
    result = pipeline.run(sources, spec, rng=62)
    names = [span["name"] for span in exporter.spans]
    for stage in ("tailor", "clean", "audit", "document"):
        assert f"pipeline.stage.{stage}" in names
    run_span = next(s for s in exporter.spans if s["name"] == "pipeline.run")
    assert run_span["attributes"]["sources"] == 2
    stage_spans = [s for s in exporter.spans if s["name"].startswith("pipeline.stage.")]
    assert all(s["parent"] == "pipeline.run" and s["depth"] >= 1 for s in stage_spans)
    registry = obs.global_registry()
    assert registry.counter_value("pipeline.runs") == 1.0
    assert registry.counter_value("tailoring.runs") == 1.0
    assert registry.counter_value("tailoring.draws") > 0
    # Stage timings ride along in the provenance and the result itself.
    assert dict(result.stage_timings).keys() == {"tailor", "clean", "audit", "document"}
    timing_lines = [p for p in result.provenance if p.startswith("stage timings")]
    assert len(timing_lines) == 1 and "tailor=" in timing_lines[0]


def test_stage_timings_present_even_when_disabled(pipeline_inputs):
    sources, spec = pipeline_inputs
    pipeline = ResponsibleIntegrationPipeline(("gender", "race"))
    result = pipeline.run(sources, spec, rng=63)
    assert len(result.stage_timings) == 4
    assert any(p.startswith("stage timings") for p in result.provenance)
    assert list(obs.global_registry().metric_names()) == []


def test_cli_metrics_snapshot_spans_subsystems(pipeline_inputs, tmp_path, capsys):
    """The ISSUE acceptance check: one in-process flow, one combined snapshot
    with >=5 metric names across >=3 subsystems."""
    sources, spec = pipeline_inputs
    obs.enable()
    pipeline = ResponsibleIntegrationPipeline(("gender", "race"))
    result = pipeline.run(sources, spec, rng=64)
    hasher = MinHasher(num_hashes=32, rng=np.random.default_rng(65))
    hasher.signature({"a", "b", "c"})
    csv_path = tmp_path / "integrated.csv"
    write_csv(result.table, csv_path)
    code = cli_main([str(csv_path), "--sensitive", "gender,race", "--metrics"])
    assert code == 0
    out = capsys.readouterr().out
    snapshot = json.loads(out.split("=== metrics ===", 1)[1])
    names = set(snapshot["counters"]) | set(snapshot["gauges"])
    names |= set(snapshot["histograms"])
    assert len(names) >= 5
    subsystems = {name.split(".", 1)[0] for name in names}
    assert {"pipeline", "discovery", "tailoring", "cli"} <= subsystems
