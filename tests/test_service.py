"""respdi.service unit coverage: cache, queries, snapshots, serve loop.

The service package's contracts, one at a time: the LRU result cache
(bounds, eviction order, generation invalidation, disablement), query
fingerprints (stable, exact, memoized), snapshot pinning (immutability
under concurrent commits, contention bounds), the ``QueryService``
front-end (cached == uncached, manifest-token re-pin, batched
``query_many``), the JSON-lines serve loop, pipeline integration via
``discover_sources(service=...)``, and the process-wide shared-service
registry the CLI rides on.
"""

import io
import json
import threading

import pytest

from respdi import QueryService as TopLevelQueryService
from respdi import obs
from respdi.catalog import CatalogStore
from respdi.errors import (
    RespdiError,
    SnapshotContentionError,
    SpecificationError,
)
from respdi.parallel import ExecutionContext
from respdi.pipeline import ResponsibleIntegrationPipeline
from respdi.service import (
    ContainmentQuery,
    JoinQuery,
    KeywordQuery,
    QueryResultCache,
    QueryService,
    UnionQuery,
    build_query,
    handle_request,
    pin_snapshot,
    reset_shared_services,
    serve,
    shared_service,
)
from respdi.service.cache import is_hit, make_key
from respdi.table import Schema, Table

SCHEMA = Schema([("key", "categorical"), ("value", "numeric")])

#: Small hash family: cheap builds without changing any code path.
OPTS = dict(rng=7, num_hashes=16, sketch_size=16)


def _table(tag, n=8, offset=0.0):
    rows = [(f"{tag}_{i}", float(i) + offset) for i in range(n)]
    return Table.from_rows(SCHEMA, rows)


TABLES = {"alpha": _table("a"), "beta": _table("b"), "gamma": _table("g")}


@pytest.fixture
def store(tmp_path):
    # store_data=True so discovery paths that load candidate tables
    # (``discover_sources``) work against the same catalog.
    return CatalogStore.build(tmp_path / "cat", TABLES, store_data=True, **OPTS)


@pytest.fixture
def service(store):
    return QueryService(store)


@pytest.fixture(autouse=True)
def _clean_shared():
    reset_shared_services()
    yield
    reset_shared_services()


# -- the result cache ----------------------------------------------------------


def test_cache_get_put_and_lru_eviction_order():
    cache = QueryResultCache(maxsize=2)
    cache.put((1, "a"), "A")
    cache.put((1, "b"), "B")
    assert is_hit(cache.get((1, "a")))  # touch: "a" is now most recent
    cache.put((1, "c"), "C")  # evicts "b", the least recently used
    assert [key for key in cache.keys()] == [(1, "a"), (1, "c")]
    assert not is_hit(cache.get((1, "b")))
    assert cache.evictions == 1
    assert cache.hits == 1 and cache.misses == 1


def test_cache_generation_eviction_only_drops_stale():
    cache = QueryResultCache()
    cache.put(make_key(3, "x"), 1)
    cache.put(make_key(4, "x"), 2)
    cache.put(make_key(4, "y"), 3)
    dropped = cache.evict_stale_generations(4)
    assert dropped == 1
    assert sorted(cache.keys()) == [(4, "x"), (4, "y")]


def test_cache_size_zero_disables():
    cache = QueryResultCache(maxsize=0)
    assert not cache.enabled
    cache.put((1, "a"), "A")
    assert not is_hit(cache.get((1, "a")))
    assert cache.stats()["size"] == 0
    assert cache.hits == 0 and cache.misses == 0  # disabled: no accounting


def test_cache_clear_and_stats():
    cache = QueryResultCache(maxsize=4)
    cache.put((1, "a"), "A")
    cache.get((1, "a"))
    stats = cache.stats()
    assert stats["size"] == 1 and stats["maxsize"] == 4 and stats["hits"] == 1
    assert len(cache) == 1
    cache.clear()
    assert cache.stats()["size"] == 0 and len(cache) == 0
    with pytest.raises(SpecificationError):
        QueryResultCache(maxsize=-1)


# -- query fingerprints --------------------------------------------------------


def test_fingerprints_distinguish_kind_and_every_parameter():
    fingerprints = {
        KeywordQuery(text="x", k=5).fingerprint,
        KeywordQuery(text="x", k=6).fingerprint,
        KeywordQuery(text="y", k=5).fingerprint,
        JoinQuery(values=("x",), k=5).fingerprint,
        JoinQuery(values=("x",), k=5, min_overlap=2).fingerprint,
        ContainmentQuery(values=("x",), threshold=0.5).fingerprint,
        ContainmentQuery(values=("x",), threshold=0.25).fingerprint,
        UnionQuery(table=_table("q"), k=5).fingerprint,
        UnionQuery(table=_table("q"), k=6).fingerprint,
        UnionQuery(table=_table("r"), k=5).fingerprint,
    }
    assert len(fingerprints) == 10  # no collisions anywhere in the matrix


def test_equal_queries_share_a_fingerprint_and_memoize():
    one = UnionQuery(table=_table("q"), k=5)
    two = UnionQuery(table=_table("q"), k=5)
    assert one.fingerprint == two.fingerprint
    assert one.fingerprint is one.fingerprint  # memoized on the instance


def test_union_query_requires_a_table():
    with pytest.raises(SpecificationError):
        UnionQuery()


# -- snapshots -----------------------------------------------------------------


def test_snapshot_pins_one_generation_across_commits(store):
    snapshot = pin_snapshot(store)
    before = snapshot.entry_fingerprints()
    assert snapshot.names == ("alpha", "beta", "gamma")

    writer = CatalogStore.open(store.directory)
    writer.refresh_many({"alpha": _table("a2", offset=50.0)})
    writer.remove_table("gamma")

    # The pinned handle is unmoved: same generation, same fingerprints,
    # and its queries still see all three original tables.
    assert snapshot.entry_fingerprints() == before
    hits = snapshot.query(KeywordQuery(text="gamma", k=5))
    assert [hit.table_name for hit in hits] == ["gamma"]

    fresh = pin_snapshot(CatalogStore.open(store.directory))
    assert fresh.generation > snapshot.generation
    assert sorted(fresh.names) == ["alpha", "beta"]


def test_pin_contention_exhaustion_raises(store, monkeypatch):
    from respdi.errors import CatalogCorruptError

    def always_corrupt(self):
        raise CatalogCorruptError("simulated writer race")

    monkeypatch.setattr(CatalogStore, "index", always_corrupt)
    with pytest.raises(SnapshotContentionError, match="simulated writer race"):
        pin_snapshot(store, max_retries=3)


# -- QueryService --------------------------------------------------------------


def test_cached_results_are_byte_identical_to_uncached(service):
    queries = [
        KeywordQuery(text="alpha", k=5),
        UnionQuery(table=_table("q", n=4), k=5),
        JoinQuery(values=("a_1", "a_2", "b_3"), k=5),
        ContainmentQuery(values=("a_1", "a_2"), threshold=0.2),
    ]
    for query in queries:
        uncached = service.query(query, cached=False)
        miss = service.query(query)  # first cached call: a miss
        hit = service.query(query)  # second: served from the cache
        assert repr(miss) == repr(uncached)
        assert repr(hit) == repr(uncached)
        assert hit is miss  # the cache returns the very computed object
    assert service.cache.hits == len(queries)
    assert service.cache.misses == len(queries)


def test_repins_only_when_the_manifest_moves(service):
    obs.enable()
    obs.reset()
    try:
        first = service.snapshot()
        for _ in range(5):
            assert service.snapshot() is first  # token unchanged: no pin
        counters = obs.global_registry().snapshot()["counters"]
        assert counters["service.snapshot.pinned"] == 1.0

        writer = CatalogStore.open(service.directory)
        writer.refresh_many({"alpha": _table("a2", offset=9.0)})
        second = service.snapshot()
        assert second is not first
        assert second.generation > first.generation
        counters = obs.global_registry().snapshot()["counters"]
        assert counters["service.snapshot.pinned"] == 2.0
    finally:
        obs.disable()
        obs.reset()


def test_commit_invalidate_then_identical_answers_at_new_generation(service):
    query = KeywordQuery(text="alpha", k=5)
    service.query(query)
    old_generation = service.snapshot().generation
    assert [key[0] for key in service.cache.keys()] == [old_generation]

    writer = CatalogStore.open(service.directory)
    writer.refresh_many({"beta": _table("b2", offset=9.0)})

    fresh = service.query(query)
    new_generation = service.snapshot().generation
    assert new_generation > old_generation
    # Stale-generation entries are gone; the answer was recomputed (and
    # re-cached) under the new generation and matches an uncached run.
    assert [key[0] for key in service.cache.keys()] == [new_generation]
    assert repr(fresh) == repr(service.query(query, cached=False))


def test_query_many_pins_one_snapshot_and_preserves_order(service):
    queries = [
        KeywordQuery(text="alpha", k=5),
        KeywordQuery(text="beta", k=5),
        JoinQuery(values=("a_1",), k=5),
        KeywordQuery(text="alpha", k=5),  # duplicate: a cache hit in-batch
    ]
    results = service.query_many(queries)
    assert len(results) == len(queries)
    assert repr(results[0]) == repr(results[3])
    expected = [service.query(q, cached=False) for q in queries]
    for got, want in zip(results, expected):
        assert repr(got) == repr(want)
    assert service.query_many([]) == []


def test_query_many_threads_matches_serial(store):
    serial = QueryService(store, context=ExecutionContext())
    threaded = QueryService(
        store, context=ExecutionContext(backend="threads", n_jobs=3, chunksize=1)
    )
    queries = [KeywordQuery(text=name, k=5) for name in TABLES] + [
        JoinQuery(values=("a_1", "b_2"), k=5)
    ]
    assert repr(serial.query_many(queries)) == repr(threaded.query_many(queries))


def test_uncached_queries_bypass_the_cache(service):
    service.query(KeywordQuery(text="alpha", k=5), cached=False)
    assert list(service.cache.keys()) == []
    assert service.cache.hits == 0 and service.cache.misses == 0


def test_stats_reports_generation_and_cache_state(service):
    assert service.stats()["generation"] is None  # nothing pinned yet
    service.query(KeywordQuery(text="alpha", k=5))
    stats = service.stats()
    assert stats["generation"] == service.snapshot().generation
    assert stats["entries"] == 3 and stats["size"] == 1
    assert stats["directory"] == str(service.directory)


def test_service_opens_store_from_a_path(tmp_path, store):
    service = QueryService(store.directory)
    hits = service.query(KeywordQuery(text="alpha", k=5))
    assert [hit.table_name for hit in hits] == ["alpha"]
    assert TopLevelQueryService is QueryService  # exported at top level


# -- pipeline integration ------------------------------------------------------


def test_discover_sources_via_service_matches_lake_path(store, service):
    pipeline = ResponsibleIntegrationPipeline(sensitive_columns=("key",))
    query = _table("a", n=4)
    via_service = pipeline.discover_sources(
        query=query, service=service, min_score=0.0
    )
    via_lake = pipeline.discover_sources(
        lake=store.index(), query=query, min_score=0.0
    )
    assert sorted(via_service) == sorted(via_lake)
    for name in via_service:
        assert via_service[name].schema.names == via_lake[name].schema.names


def test_discover_sources_argument_validation(service):
    pipeline = ResponsibleIntegrationPipeline(sensitive_columns=("key",))
    with pytest.raises(SpecificationError, match="query"):
        pipeline.discover_sources(service=service)
    with pytest.raises(SpecificationError, match="not both"):
        pipeline.discover_sources(
            lake={}, query=_table("q"), service=service
        )
    with pytest.raises(SpecificationError, match="lake"):
        pipeline.discover_sources(query=_table("q"))


# -- the serve loop ------------------------------------------------------------


def _serve_lines(service, requests, **kwargs):
    stream = io.StringIO(
        "".join(json.dumps(request) + "\n" for request in requests)
    )
    out = io.StringIO()
    served = serve(service, stream, out, **kwargs)
    return served, [json.loads(line) for line in out.getvalue().splitlines()]


def test_serve_answers_every_op(service):
    served, responses = _serve_lines(
        service,
        [
            {"op": "ping"},
            {"op": "keyword", "text": "alpha", "k": 5},
            {"op": "join", "values": ["a_1", "b_2"], "k": 5},
            {"op": "containment", "values": ["a_1"], "threshold": 0.2},
            {"op": "stats"},
            {"op": "stop"},
        ],
    )
    assert served == 6
    assert all(response["ok"] for response in responses)
    keyword = responses[1]
    assert keyword["generation"] == service.snapshot().generation
    assert keyword["results"][0]["table"] == "alpha"
    assert responses[4]["stats"]["entries"] == 3
    assert responses[-1] == {"ok": True, "op": "stop"}


def test_serve_reports_bad_requests_in_band_and_keeps_going(service):
    stream = io.StringIO(
        "not json\n"
        + json.dumps({"op": "nope"}) + "\n"
        + json.dumps(["not", "an", "object"]) + "\n"
        + json.dumps({"op": "keyword"}) + "\n"  # missing required field
        + "\n"  # blank lines are skipped, not served
        + json.dumps({"op": "ping"}) + "\n"
    )
    out = io.StringIO()
    served = serve(service, stream, out)
    responses = [json.loads(line) for line in out.getvalue().splitlines()]
    assert served == 5
    assert [response["ok"] for response in responses] == [
        False, False, False, False, True,
    ]
    assert "unknown op" in responses[1]["error"]
    assert "'text'" in responses[3]["error"]


def test_serve_reload_repins_to_the_latest_commit(service, store):
    """Regression for the ``reload`` op: an out-of-band commit becomes
    visible the moment the operator (or the ingest daemon) asks, and the
    response reports the generation move."""
    assert service.query(KeywordQuery(text="alpha", k=3))  # pin gen 2
    store.add_table("delta", _table("d"))
    served, responses = _serve_lines(
        service,
        [
            {"op": "reload"},
            {"op": "keyword", "text": "delta", "k": 3},
            {"op": "stats"},
        ],
    )
    assert served == 3 and all(response["ok"] for response in responses)
    reload_response = responses[0]
    assert reload_response["op"] == "reload"
    assert reload_response["previous_generation"] == 2
    assert reload_response["generation"] == 3
    assert responses[1]["generation"] == 3
    assert responses[1]["results"][0]["table"] == "delta"
    # stats now also reports the committed generation straight from
    # disk, so a poller can watch ingestion without issuing queries.
    assert responses[2]["stats"]["committed_generation"] == 3
    assert responses[2]["stats"]["generation"] == 3


def test_serve_reload_without_prior_pin_reports_none(service):
    served, responses = _serve_lines(service, [{"op": "reload"}])
    assert served == 1 and responses[0]["ok"]
    assert responses[0]["previous_generation"] is None
    assert responses[0]["generation"] == 2


def test_stats_reports_committed_generation_before_any_pin(service, store):
    assert service.stats()["generation"] is None  # nothing pinned yet
    assert service.stats()["committed_generation"] == 2
    store.add_table("delta", _table("d"))
    # The committed view moves with the disk; the pin stays lazy.
    assert service.stats()["committed_generation"] == 3
    assert service.stats()["generation"] is None


def test_serve_max_requests_bounds_the_loop(service):
    served, responses = _serve_lines(
        service, [{"op": "ping"}] * 5, max_requests=2
    )
    assert served == 2 and len(responses) == 2


def test_serve_union_and_join_from_csv(service, tmp_path):
    from respdi.table import write_csv

    csv_path = tmp_path / "query.csv"
    write_csv(_table("a", n=4), csv_path)
    served, responses = _serve_lines(
        service,
        [
            {"op": "union", "csv": str(csv_path), "k": 5},
            {"op": "join", "csv": str(csv_path), "column": "key", "k": 5},
        ],
    )
    assert served == 2 and all(response["ok"] for response in responses)
    assert {"table", "score", "alignment"} <= set(responses[0]["results"][0])
    assert {"table", "column", "overlap"} <= set(responses[1]["results"][0])


def test_build_query_rejects_unknown_and_incomplete_requests():
    with pytest.raises(RespdiError, match="unknown op"):
        build_query({"op": "teleport"})
    with pytest.raises(RespdiError, match="op"):
        build_query({})
    with pytest.raises(RespdiError, match="'column'"):
        build_query({"op": "join", "csv": "x.csv"})


def test_handle_request_renders_through_the_query(service):
    response = handle_request(
        service, {"op": "keyword", "text": "beta", "k": 5}
    )
    assert response["ok"] and response["op"] == "keyword"
    assert response["results"] == [
        {"table": hit.table_name, "score": hit.score}
        for hit in service.query(KeywordQuery(text="beta", k=5), cached=False)
    ]


# -- the shared per-directory registry ----------------------------------------


def test_shared_service_is_one_per_directory(store, tmp_path):
    relative_spelling = store.directory / ".." / store.directory.name
    one = shared_service(store.directory)
    two = shared_service(relative_spelling)  # resolves to the same key
    assert one is two

    other = CatalogStore.build(tmp_path / "other", {"solo": _table("s")}, **OPTS)
    assert shared_service(other.directory) is not one

    reset_shared_services()
    assert shared_service(store.directory) is not one


def test_shared_service_registry_is_thread_safe(store):
    services = []

    def grab():
        services.append(shared_service(store.directory))

    threads = [threading.Thread(target=grab) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len({id(service) for service in services}) == 1
