"""Missingness mechanisms and error injection."""

import numpy as np
import pytest

from respdi.datagen import inject_mar, inject_mcar, inject_mnar, inject_numeric_errors
from respdi.errors import SpecificationError


def test_mcar_rate_and_mask(health_table):
    dirty, mask = inject_mcar(health_table, "x0", 0.3, rng=1)
    assert mask.sum() == dirty.missing_mask("x0").sum()
    assert mask.mean() == pytest.approx(0.3, abs=0.06)
    # Original untouched.
    assert health_table.missing_mask("x0").sum() == 0


def test_mcar_zero_rate_is_noop(health_table):
    dirty, mask = inject_mcar(health_table, "x0", 0.0, rng=1)
    assert mask.sum() == 0
    assert dirty.equals(health_table)


def test_mcar_validation(health_table):
    with pytest.raises(SpecificationError):
        inject_mcar(health_table, "x0", 1.0)


def test_mar_depends_on_conditioning_column(health_table):
    dirty, mask = inject_mar(
        health_table, "x0", "race", {"black": 0.6, "white": 0.05}, rng=2
    )
    race = health_table.column("race")
    black_rate = mask[race == "black"].mean()
    white_rate = mask[race == "white"].mean()
    assert black_rate == pytest.approx(0.6, abs=0.1)
    assert white_rate == pytest.approx(0.05, abs=0.05)


def test_mar_unlisted_values_never_missing(health_table):
    dirty, mask = inject_mar(health_table, "x0", "race", {"black": 0.5}, rng=3)
    race = health_table.column("race")
    assert mask[race == "white"].sum() == 0


def test_mar_validation(health_table):
    with pytest.raises(SpecificationError):
        inject_mar(health_table, "x0", "race", {"black": 1.5})


def test_mnar_prefers_large_values(health_table):
    dirty, mask = inject_mnar(health_table, "x1", base_rate=0.3, slope=2.0, rng=4)
    values = np.asarray(health_table.column("x1"), dtype=float)
    removed_mean = values[mask].mean()
    kept_mean = values[~mask].mean()
    assert removed_mean > kept_mean


def test_mnar_requires_numeric(health_table):
    with pytest.raises(SpecificationError):
        inject_mnar(health_table, "race", 0.2)
    with pytest.raises(SpecificationError):
        inject_mnar(health_table, "x0", 0.0)


def test_error_injection_marks_and_preserves(health_table):
    dirty, mask, clean = inject_numeric_errors(
        health_table, "x2", rate=0.1, magnitude=6.0, rng=5
    )
    assert mask.mean() == pytest.approx(0.1, abs=0.04)
    dirty_values = np.asarray(dirty.column("x2"), dtype=float)
    assert np.allclose(dirty_values[~mask], clean[~mask])
    shift = np.abs(dirty_values[mask] - clean[mask])
    assert (shift > 3 * clean.std()).all()


def test_error_injection_validations(health_table):
    with pytest.raises(SpecificationError):
        inject_numeric_errors(health_table, "x2", rate=1.0)
    with pytest.raises(SpecificationError):
        inject_numeric_errors(health_table, "x2", rate=0.1, magnitude=0.0)
    with pytest.raises(SpecificationError):
        inject_numeric_errors(health_table, "race", rate=0.1)
