"""Predicate semantics, including SQL-like missing-value behaviour."""

import pytest

from respdi.errors import SpecificationError
from respdi.table import (
    And,
    Eq,
    In,
    IsMissing,
    Ne,
    Not,
    NotMissing,
    Or,
    Range,
    Schema,
    Table,
    TruePredicate,
)


@pytest.fixture
def table():
    schema = Schema([("color", "categorical"), ("size", "numeric")])
    rows = [
        ("red", 1.0),
        ("blue", 2.0),
        ("red", 3.0),
        (None, 4.0),
        ("green", None),
    ]
    return Table.from_rows(schema, rows)


def test_eq_matches_and_skips_missing(table):
    mask = Eq("color", "red").mask(table)
    assert mask.tolist() == [True, False, True, False, False]


def test_ne_does_not_match_missing(table):
    mask = Ne("color", "red").mask(table)
    # Row 3 has missing color: neither == nor != matches.
    assert mask.tolist() == [False, True, False, False, True]


def test_in_predicate(table):
    mask = In("color", {"red", "green"}).mask(table)
    assert mask.tolist() == [True, False, True, False, True]


def test_range_inclusive_default(table):
    mask = Range("size", 2.0, 3.0).mask(table)
    assert mask.tolist() == [False, True, True, False, False]


def test_range_exclusive_bounds(table):
    mask = Range("size", 1.0, 3.0, inclusive_lo=False, inclusive_hi=False).mask(table)
    assert mask.tolist() == [False, True, False, False, False]


def test_range_one_sided(table):
    assert Range("size", lo=3.0).mask(table).tolist() == [
        False, False, True, True, False,
    ]
    assert Range("size", hi=2.0).mask(table).tolist() == [
        True, True, False, False, False,
    ]


def test_range_never_matches_nan(table):
    mask = Range("size", -100, 100).mask(table)
    assert mask.tolist() == [True, True, True, True, False]


def test_range_requires_a_bound():
    with pytest.raises(SpecificationError):
        Range("size")


def test_range_rejects_empty_interval():
    with pytest.raises(SpecificationError, match="empty range"):
        Range("size", 5.0, 1.0)


def test_is_missing_and_not_missing(table):
    assert IsMissing("color").mask(table).tolist() == [
        False, False, False, True, False,
    ]
    assert NotMissing("size").mask(table).tolist() == [
        True, True, True, True, False,
    ]


def test_boolean_algebra(table):
    predicate = Eq("color", "red") & Range("size", 2.0, 10.0)
    assert predicate.mask(table).tolist() == [False, False, True, False, False]
    predicate = Eq("color", "blue") | Eq("color", "green")
    assert predicate.mask(table).tolist() == [False, True, False, False, True]
    predicate = ~Eq("color", "red")
    assert predicate.mask(table).tolist() == [False, True, False, True, True]


def test_true_predicate(table):
    assert TruePredicate().mask(table).all()
    assert TruePredicate().columns() == frozenset()


def test_columns_tracking(table):
    predicate = (Eq("color", "red") & Range("size", 0, 1)) | Not(Eq("color", "x"))
    assert predicate.columns() == frozenset({"color", "size"})


def test_and_or_require_parts():
    with pytest.raises(SpecificationError):
        And()
    with pytest.raises(SpecificationError):
        Or()


def test_reprs_are_informative():
    assert "red" in repr(Eq("color", "red"))
    assert "[" in repr(Range("size", 0, 1))
    assert "MISSING" in repr(IsMissing("color"))
