"""Skewed source generation."""

import pytest

from respdi.datagen import make_source_tables, skewed_group_distributions
from respdi.datagen.sources import overlapping_source_tables
from respdi.errors import SpecificationError


def test_distributions_are_normalized(health_population, rng):
    base = health_population.group_distribution()
    dists = skewed_group_distributions(base, 5, rng=rng)
    assert len(dists) == 5
    for dist in dists:
        assert sum(dist.values()) == pytest.approx(1.0)
        assert set(dist) == set(base)


def test_concentration_controls_skew(health_population):
    base = health_population.group_distribution()
    from respdi.stats import total_variation

    tight = skewed_group_distributions(base, 30, concentration=200.0, rng=1)
    loose = skewed_group_distributions(base, 30, concentration=0.5, rng=1)
    tight_tv = sum(total_variation(base, d) for d in tight) / 30
    loose_tv = sum(total_variation(base, d) for d in loose) / 30
    assert tight_tv < loose_tv


def test_specialized_source(health_population, rng):
    base = health_population.group_distribution()
    dists = skewed_group_distributions(
        base, 3, specialized={1: ("F", "black")}, specialization_mass=0.8, rng=rng
    )
    assert dists[1][("F", "black")] == pytest.approx(0.8)


def test_specialization_validations(health_population, rng):
    base = health_population.group_distribution()
    with pytest.raises(SpecificationError, match="out of range"):
        skewed_group_distributions(base, 2, specialized={5: ("F", "black")}, rng=rng)
    with pytest.raises(SpecificationError, match="not in base"):
        skewed_group_distributions(base, 2, specialized={0: ("Z", "Z")}, rng=rng)
    with pytest.raises(SpecificationError):
        skewed_group_distributions(base, 0, rng=rng)
    with pytest.raises(SpecificationError):
        skewed_group_distributions(base, 2, specialization_mass=0.0, rng=rng)


def test_make_source_tables_respects_distributions(health_population):
    base = health_population.group_distribution()
    dists = skewed_group_distributions(
        base, 2, specialized={0: ("M", "black")}, specialization_mass=0.9, rng=3
    )
    tables = make_source_tables(health_population, dists, 3000, rng=4)
    counts = tables[0].group_counts(["gender", "race"])
    assert counts[("M", "black")] / 3000 == pytest.approx(0.9, abs=0.03)


def test_make_source_tables_validates_rows(health_population, rng):
    with pytest.raises(SpecificationError):
        make_source_tables(health_population, [health_population.group_distribution()], 0, rng)


def test_overlapping_sources_share_ids(health_population):
    base = health_population.group_distribution()
    dists = [base, base]
    sources, pool = overlapping_source_tables(
        health_population, dists, 200, overlap=0.5, rng=5
    )
    assert all(len(s) == 200 for s in sources)
    ids_a = set(sources[0].unique("_id"))
    ids_b = set(sources[1].unique("_id"))
    shared = ids_a & ids_b
    # Both sources draw half their rows from the same pool, so some ids
    # are expected to collide (statistically near-certain at these sizes).
    assert all(i.startswith("pool") for i in shared)
    own = {i for i in ids_a if i.startswith("own")}
    assert len(own) == 100


def test_zero_overlap_is_disjoint(health_population):
    base = health_population.group_distribution()
    sources, _ = overlapping_source_tables(
        health_population, [base, base], 50, overlap=0.0, rng=6
    )
    ids_a = set(sources[0].unique("_id"))
    ids_b = set(sources[1].unique("_id"))
    assert not ids_a & ids_b


def test_overlap_validation(health_population):
    with pytest.raises(SpecificationError):
        overlapping_source_tables(
            health_population, [health_population.group_distribution()], 10, 1.0
        )
