"""Table union search."""

import pytest

from respdi.discovery import UnionSearch, column_unionability, table_unionability
from respdi.errors import EmptyInputError, SpecificationError
from respdi.table import Schema, Table


def make_table(columns):
    schema = Schema([(name, "categorical") for name in columns])
    height = max(len(v) for v in columns.values())
    data = {
        name: [values[i % len(values)] for i in range(height)]
        for name, values in columns.items()
    }
    return Table(schema, data)


def test_column_unionability():
    assert column_unionability({"a", "b"}, {"a", "b"}) == 1.0
    assert column_unionability({"a"}, {"b"}) == 0.0
    assert column_unionability(set(), {"a"}) == 0.0
    assert column_unionability({"a", "b", "c"}, {"b", "c", "d"}) == pytest.approx(0.5)


def test_table_unionability_alignment():
    query = make_table({"city": ["nyc", "la", "chi"], "state": ["ny", "ca", "il"]})
    # Candidate has the same domains under different names, swapped order.
    candidate = make_table({"st": ["ny", "ca", "il"], "town": ["nyc", "la", "chi"]})
    score, alignment = table_unionability(query, candidate)
    assert score == pytest.approx(1.0)
    assert ("city", "town") in alignment
    assert ("state", "st") in alignment


def test_table_unionability_partial():
    query = make_table({"a": ["x", "y"], "b": ["p", "q"]})
    candidate = make_table({"c": ["x", "y"], "d": ["zzz", "www"]})
    score, alignment = table_unionability(query, candidate)
    assert score == pytest.approx(0.5)
    assert alignment == [("a", "c")]


def test_table_unionability_no_categorical_candidate():
    query = make_table({"a": ["x"]})
    candidate = Table(Schema([("n", "numeric")]), {"n": [1.0]})
    score, alignment = table_unionability(query, candidate)
    assert score == 0.0 and alignment == []


def test_table_unionability_requires_query_columns():
    query = Table(Schema([("n", "numeric")]), {"n": [1.0]})
    with pytest.raises(SpecificationError):
        table_unionability(query, query)


def test_union_search_ranking():
    search = UnionSearch(num_hashes=128, rng=0)
    query = make_table({"name": [f"p{i}" for i in range(100)]})
    perfect = make_table({"person": [f"p{i}" for i in range(100)]})
    half = make_table(
        {"person": [f"p{i}" for i in range(50)] + [f"q{i}" for i in range(50)]}
    )
    unrelated = make_table({"thing": [f"z{i}" for i in range(100)]})
    search.add_table("perfect", perfect)
    search.add_table("half", half)
    search.add_table("unrelated", unrelated)
    results = search.search(query, k=3)
    assert results[0].table_name == "perfect"
    assert results[1].table_name == "half"
    assert results[0].score > results[1].score > results[2].score


def test_union_search_k_limits():
    search = UnionSearch(rng=0)
    search.add_table("t", make_table({"a": ["x"]}))
    results = search.search(make_table({"a": ["x"]}), k=1)
    assert len(results) == 1


def test_union_search_errors():
    search = UnionSearch(rng=0)
    with pytest.raises(EmptyInputError):
        search.search(make_table({"a": ["x"]}))
    search.add_table("t", make_table({"a": ["x"]}))
    with pytest.raises(SpecificationError, match="already indexed"):
        search.add_table("t", make_table({"a": ["y"]}))
    with pytest.raises(SpecificationError):
        search.search(make_table({"a": ["x"]}), k=0)
