"""Regenerate ``seed_golden.json`` from the live implementations.

The recorded values were produced by the *seed* scalar implementations
(PR 10 captured them before vectorizing the table core).  Re-running
this script must reproduce the file byte-for-byte on any commit: the
vectorized paths are required to stay byte-identical to the seed.

    PYTHONPATH=src python tests/data/gen_seed_golden.py
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from respdi.catalog.store import table_fingerprint
from respdi.discovery.correlation_sketches import CorrelationSketch, _key_hash
from respdi.discovery.minhash import MinHasher, _stable_hash32
from respdi.table import ColumnSpec, ColumnType, Schema, Table

OUT = Path(__file__).with_name("seed_golden.json")

#: Values with awkward reprs: unicode, embedded NUL, equal-but-distinct
#: reprs (1 / 1.0 / True), empty string, nested containers.
TRICKY_VALUES = [
    "plain",
    "",
    "café",
    "nul\x00byte",
    "line\nbreak",
    "日本語",
    1,
    1.0,
    True,
    False,
    0,
    -0.0,
    0.0,
    None,
    (1, "two"),
    "1",
    "True",
    3.141592653589793,
    -17,
    10**30,
]


def golden_tables() -> dict[str, Table]:
    schema = Schema(
        [
            ColumnSpec("name", ColumnType.CATEGORICAL),
            ColumnSpec("city", ColumnType.CATEGORICAL),
            ColumnSpec("age", ColumnType.NUMERIC),
            ColumnSpec("score", ColumnType.NUMERIC),
        ]
    )
    rng = np.random.default_rng(20260808)
    n = 64
    cities = ["lisbon", "são paulo", "", "nul\x00city", None]
    rows = []
    for i in range(n):
        rows.append(
            (
                f"person-{i % 17}",
                cities[i % len(cities)],
                None if i % 11 == 0 else float(rng.integers(18, 90)),
                float("nan") if i % 7 == 0 else round(float(rng.normal()), 6),
            )
        )
    mixed = Table.from_rows(schema, rows)

    empty = Table.empty(schema)

    allnan = Table(
        Schema([ColumnSpec("x", ColumnType.NUMERIC)]),
        {"x": [None] * 8},
    )

    tricky = Table(
        Schema([ColumnSpec("v", ColumnType.CATEGORICAL)]),
        {"v": TRICKY_VALUES},
    )
    return {"mixed": mixed, "empty": empty, "allnan": allnan, "tricky": tricky}


def main() -> None:
    tables = golden_tables()
    record: dict = {}

    record["stable_hash32"] = {
        repr(v): _stable_hash32(v) for v in TRICKY_VALUES
    }

    record["table_fingerprints"] = {
        name: table_fingerprint(table) for name, table in tables.items()
    }

    hasher = MinHasher(num_hashes=32, rng=5)
    record["minhash"] = {
        "rng": 5,
        "num_hashes": 32,
        "coefficient_fingerprint": hasher.fingerprint,
        "signatures": {
            "tricky": [int(v) for v in hasher.signature(TRICKY_VALUES).values],
            "cities": [
                int(v)
                for v in hasher.signature(
                    [c for c in tables["mixed"].column("city") if c is not None]
                ).values
            ],
        },
    }

    record["key_hash"] = {
        repr(v): {str(seed): _key_hash(v, seed) for seed in (17, 23)}
        for v in TRICKY_VALUES[:8]
    }

    keys = [f"k{i % 9}" if i % 13 else None for i in range(40)]
    values = [float("nan") if i % 5 == 0 else float(i) * 0.5 for i in range(40)]
    sketch = CorrelationSketch.build(keys, values, size=8, seed=17)
    record["correlation_sketch"] = {
        "num_keys": sketch.num_keys,
        "seed": sketch.seed,
        "entries": [[h, repr(k), v] for h, k, v in sketch.entries],
    }

    OUT.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"wrote {OUT}")


if __name__ == "__main__":
    main()
