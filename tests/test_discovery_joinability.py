"""Exact joinability search."""

import pytest

from respdi.discovery import JoinabilityIndex
from respdi.errors import EmptyInputError, SpecificationError
from respdi.table import Schema, Table


def make_table(name_to_values):
    schema = Schema([(name, "categorical") for name in name_to_values])
    height = max(len(v) for v in name_to_values.values())
    columns = {
        name: [values[i % len(values)] for i in range(height)]
        for name, values in name_to_values.items()
    }
    return Table(schema, columns)


@pytest.fixture
def index():
    index = JoinabilityIndex()
    index.add_table("users", make_table({"uid": [f"u{i}" for i in range(50)]}))
    index.add_table(
        "orders",
        make_table({"uid": [f"u{i}" for i in range(30)], "oid": [f"o{i}" for i in range(60)]}),
    )
    index.add_table("logs", make_table({"session": [f"s{i}" for i in range(40)]}))
    return index


def test_exact_overlap_ranking(index):
    query = [f"u{i}" for i in range(50)]
    results = index.query(query, k=5)
    assert results[0].table_name == "users"
    assert results[0].overlap == 50
    assert results[0].containment_of_query == 1.0
    assert results[1].table_name == "orders"
    assert results[1].overlap == 30
    assert all(r.table_name != "logs" for r in results)


def test_min_overlap_filter(index):
    results = index.query([f"u{i}" for i in range(50)], k=5, min_overlap=40)
    assert [r.table_name for r in results] == ["users"]


def test_k_truncation(index):
    results = index.query([f"u{i}" for i in range(50)], k=1)
    assert len(results) == 1


def test_num_columns(index):
    assert index.num_columns == 4


def test_duplicate_column_rejected(index):
    with pytest.raises(SpecificationError, match="already indexed"):
        index.add_table("users", make_table({"uid": ["u1"]}))


def test_empty_query_and_index_errors(index):
    with pytest.raises(EmptyInputError):
        index.query([])
    empty = JoinabilityIndex()
    with pytest.raises(EmptyInputError):
        empty.query(["x"])
    with pytest.raises(SpecificationError):
        index.query(["x"], k=0)
    with pytest.raises(SpecificationError):
        index.query(["x"], min_overlap=0)


def test_deterministic_tiebreak():
    index = JoinabilityIndex()
    index.add_table("b", make_table({"c": ["x", "y"]}))
    index.add_table("a", make_table({"c": ["x", "y"]}))
    results = index.query(["x", "y"], k=2)
    assert [r.table_name for r in results] == ["a", "b"]
