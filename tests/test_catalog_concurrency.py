"""Multi-process catalog locking: mutual exclusion, lost updates, SIGKILL.

Real child processes (``fork`` start method — no pickling of test
state) hammer one catalog directory.  The claims under test:

* the writer lock is mutually exclusive across processes — no two
  holders ever overlap a critical section;
* concurrent ``add_table`` writers lose no updates — every writer's
  entry is present afterwards and the catalog verifies clean (this is
  the cross-process manifest-reload path: each writer must re-read the
  manifest after acquiring the lock, not trust its in-memory copy);
* a writer killed with SIGKILL leaves a stale lock that the next
  writer breaks, and each break lands on the ``catalog.lock.broken``
  audit counter;
* the pid-less lock residue (writer killed between lock creation and
  pid record) blocks writers only for its grace period.

POSIX-only; skipped where ``os.fork`` is unavailable.
"""

import multiprocessing
import os
import time

import pytest

from respdi import obs
from respdi.catalog import CatalogStore
from respdi.catalog.locking import (
    LOCK_FILENAME,
    UNREADABLE_LOCK_GRACE_SECONDS,
    break_stale_lock,
    writer_lock,
)
from respdi.errors import CatalogLockedError
from respdi.table import Schema, Table

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="needs fork start method (POSIX)"
)

SCHEMA = Schema([("key", "categorical"), ("value", "numeric")])


def _table(tag, n=8):
    return Table.from_rows(
        SCHEMA, [(f"{tag}_{i}", float(i)) for i in range(n)]
    )


def _mp():
    return multiprocessing.get_context("fork")


# -- raw lock: mutual exclusion ------------------------------------------------


def _lock_stress_worker(directory, iterations):
    """Acquire the lock *iterations* times; inside each hold, prove sole
    ownership with a marker file and do an unprotected-looking
    read-modify-write on a counter file.  Any overlap corrupts either
    the marker invariant or the final count."""
    directory = str(directory)
    marker = os.path.join(directory, "critical.marker")
    counter = os.path.join(directory, "counter.txt")
    for _ in range(iterations):
        with writer_lock(directory, timeout=30.0, poll_interval=0.002):
            if os.path.exists(marker):
                os._exit(3)  # another process inside the critical section
            with open(marker, "w") as handle:
                handle.write(str(os.getpid()))
            with open(counter) as handle:
                value = int(handle.read())
            time.sleep(0.001)  # widen the race window
            with open(counter, "w") as handle:
                handle.write(str(value + 1))
            os.remove(marker)
    os._exit(0)


def test_writer_lock_is_mutually_exclusive_across_processes(tmp_path):
    workers, iterations = 4, 10
    (tmp_path / "counter.txt").write_text("0")
    ctx = _mp()
    procs = [
        ctx.Process(target=_lock_stress_worker, args=(tmp_path, iterations))
        for _ in range(workers)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=60)
    codes = [p.exitcode for p in procs]
    assert codes == [0] * workers, (
        f"exit codes {codes}: 3 means two processes overlapped "
        "inside the critical section"
    )
    # Every read-modify-write survived: the lock serialized all of them.
    assert int((tmp_path / "counter.txt").read_text()) == workers * iterations
    assert not (tmp_path / LOCK_FILENAME).exists()


# -- concurrent catalog writers: no lost updates -------------------------------


def _add_table_worker(catalog_dir, name):
    try:
        store = CatalogStore.open(catalog_dir)
        store.add_table(name, _table(name))
    except BaseException:
        os._exit(1)
    os._exit(0)


def test_concurrent_add_table_loses_no_updates(tmp_path):
    catalog_dir = tmp_path / "cat"
    CatalogStore.build(
        catalog_dir, {"seed": _table("seed")}, rng=7, num_hashes=16
    )
    names = [f"writer{i}" for i in range(4)]
    ctx = _mp()
    procs = [
        ctx.Process(target=_add_table_worker, args=(catalog_dir, name))
        for name in names
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=60)
    assert [p.exitcode for p in procs] == [0] * len(names)

    store = CatalogStore.open(catalog_dir)
    # No lost update: every writer's entry survived every other commit.
    assert sorted(store.names) == sorted(["seed"] + names)
    assert store.verify() == []


# -- SIGKILL: stale lock break + audit counter ---------------------------------


def _hold_lock_forever(directory, ready_path):
    with writer_lock(directory, timeout=10.0):
        with open(ready_path, "w") as handle:
            handle.write("locked")
        time.sleep(60)  # until SIGKILL
    os._exit(0)  # pragma: no cover - never reached


def test_sigkilled_writer_lock_is_broken_and_audited(tmp_path):
    ready = tmp_path / "ready"
    ctx = _mp()
    proc = ctx.Process(target=_hold_lock_forever, args=(tmp_path, ready))
    proc.start()
    deadline = time.monotonic() + 30
    while not ready.exists():
        assert time.monotonic() < deadline, "child never acquired the lock"
        time.sleep(0.01)
    proc.kill()  # SIGKILL: no finally, the lock file stays behind
    proc.join(timeout=30)
    lock_path = tmp_path / LOCK_FILENAME
    assert lock_path.exists()
    assert int(lock_path.read_text()) == proc.pid

    obs.enable()
    obs.reset()
    try:
        with writer_lock(tmp_path, timeout=10.0):
            assert int(lock_path.read_text()) == os.getpid()
        counters = obs.global_registry().snapshot()["counters"]
        assert counters["catalog.lock.broken"] == 1.0
    finally:
        obs.disable()
        obs.reset()
    assert not lock_path.exists()


# -- pid-less lock residue: grace period ---------------------------------------


def test_fresh_pidless_lock_is_respected(tmp_path):
    (tmp_path / LOCK_FILENAME).touch()  # just-created, no pid yet
    assert not break_stale_lock(tmp_path)
    with pytest.raises(CatalogLockedError):
        with writer_lock(tmp_path, timeout=0.2, poll_interval=0.02):
            pass  # pragma: no cover
    assert (tmp_path / LOCK_FILENAME).exists()


def test_aged_pidless_lock_is_broken(tmp_path):
    lock_path = tmp_path / LOCK_FILENAME
    lock_path.touch()
    stale = time.time() - (UNREADABLE_LOCK_GRACE_SECONDS + 1.0)
    os.utime(lock_path, (stale, stale))
    obs.enable()
    obs.reset()
    try:
        with writer_lock(tmp_path, timeout=5.0):
            assert int(lock_path.read_text()) == os.getpid()
        counters = obs.global_registry().snapshot()["counters"]
        assert counters["catalog.lock.broken"] == 1.0
    finally:
        obs.disable()
        obs.reset()
    assert not lock_path.exists()
