"""Serial/parallel differential suite: every backend, identical bytes.

The parallel engine's contract is that fanning work out never changes a
result — not approximately, *byte-identically*.  This suite locks the
contract down at the three wired call sites:

* catalog build (`CatalogStore.build`): on-disk files compared
  file-by-file across backends;
* bulk sketching (`DataLakeIndex.register_tables`): signature arrays
  compared as raw bytes, plus every discovery query mode;
* matching (`RecordMatcher.match`): exact score and match equality.

And, extending ``test_catalog_determinism.py``, across *processes with
different* ``PYTHONHASHSEED`` *values per backend* — parallel execution
must not reintroduce the salted-hash nondeterminism the sketching layer
was built to exclude.
"""

import hashlib
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from respdi.catalog import CatalogStore
from respdi.datagen import LakeSpec, generate_lake, generate_person_registry
from respdi.discovery import DataLakeIndex
from respdi.linkage import (
    FieldComparator,
    RecordMatcher,
    jaro_winkler_similarity,
    key_blocking,
    levenshtein_similarity,
)
from respdi.parallel import ExecutionContext

CONTEXTS = {
    "serial": ExecutionContext(),
    "threads": ExecutionContext(backend="threads", n_jobs=3, chunksize=2),
    "processes": ExecutionContext(backend="processes", n_jobs=2),
}

SRC = str(Path(__file__).resolve().parent.parent / "src")


@pytest.fixture(scope="module")
def lake_tables():
    return dict(generate_lake(LakeSpec(n_distractors=5), rng=11).tables)


def _catalog_file_hashes(directory: Path) -> dict:
    hashes = {}
    for path in sorted(directory.rglob("*")):
        if path.is_file() and path.name != "writer.lock":
            hashes[str(path.relative_to(directory))] = hashlib.blake2b(
                path.read_bytes(), digest_size=16
            ).hexdigest()
    return hashes


def test_catalog_build_byte_identical_across_backends(tmp_path, lake_tables):
    hashes = {}
    for label, context in CONTEXTS.items():
        directory = tmp_path / label
        CatalogStore.build(directory, lake_tables, rng=7, context=context)
        hashes[label] = _catalog_file_hashes(directory)
    assert hashes["serial"], "build produced no files"
    for label in ("threads", "processes"):
        assert hashes[label].keys() == hashes["serial"].keys(), label
        mismatched = [
            name
            for name in hashes["serial"]
            if hashes[label][name] != hashes["serial"][name]
        ]
        assert mismatched == [], f"{label} build differs from serial: {mismatched}"


def test_refresh_many_byte_identical_across_backends(tmp_path, lake_tables):
    changed = {
        name: (table.head(max(1, len(table) - 3)) if i % 2 == 0 else table)
        for i, (name, table) in enumerate(lake_tables.items())
    }
    hashes = {}
    results = {}
    for label, context in CONTEXTS.items():
        directory = tmp_path / label
        store = CatalogStore.build(directory, lake_tables, rng=7)
        results[label] = store.refresh_many(changed, context=context)
        hashes[label] = _catalog_file_hashes(directory)
    assert results["serial"] == results["threads"] == results["processes"]
    assert any(results["serial"].values()) and not all(results["serial"].values())
    for label in ("threads", "processes"):
        assert hashes[label] == hashes["serial"], (
            f"{label} refresh left different bytes than serial"
        )


def _index_for(lake_tables, context):
    index = DataLakeIndex(rng=7)
    index.register_tables(lake_tables, context=context)
    return index


def test_bulk_sketching_byte_identical_across_backends(lake_tables):
    serial = DataLakeIndex(rng=7)
    for name, table in lake_tables.items():
        serial.register(name, table)

    query = lake_tables["query"]
    values = query.unique("q_c0")
    for label, context in CONTEXTS.items():
        index = _index_for(lake_tables, context)
        assert index.table_names == serial.table_names, label
        for name in serial.table_names:
            ours, theirs = index.artifacts(name), serial.artifacts(name)
            assert ours.token_counts == theirs.token_counts, (label, name)
            assert ours.column_values == theirs.column_values, (label, name)
            assert set(ours.column_sketches) == set(theirs.column_sketches)
            for column, sketch in ours.column_sketches.items():
                reference = theirs.column_sketches[column]
                assert (
                    sketch.signature.values.tobytes()
                    == reference.signature.values.tobytes()
                ), (label, name, column)
                assert sketch.cardinality == reference.cardinality
            assert set(ours.feature_sketches) == set(theirs.feature_sketches)
            for key, sketch in ours.feature_sketches.items():
                assert sketch.entries == theirs.feature_sketches[key].entries
        assert index.keyword_search("query", k=10) == serial.keyword_search(
            "query", k=10
        ), label
        assert index.unionable_tables(query, k=10) == serial.unionable_tables(
            query, k=10
        ), label
        assert index.joinable_columns(values, k=10) == serial.joinable_columns(
            values, k=10
        ), label
        assert index.containment_search(values, 0.3) == serial.containment_search(
            values, 0.3
        ), label


@pytest.fixture(scope="module")
def registry():
    return generate_person_registry(
        120, duplicates_per_entity=1, corruption_rates={"blue": 0.4}, rng=5
    )


def _blocking_key(row):
    return row["name"][:2] if row["name"] else None


def test_matching_identical_across_backends(registry):
    candidates = key_blocking(registry, _blocking_key)
    matcher = RecordMatcher(
        [
            FieldComparator("name", jaro_winkler_similarity, weight=2.0),
            FieldComparator("zip", levenshtein_similarity),
        ],
        threshold=0.8,
    )
    serial = matcher.match(registry, candidates, context=CONTEXTS["serial"])
    for label in ("threads", "processes"):
        result = matcher.match(registry, candidates, context=CONTEXTS[label])
        # Exact float equality: parallel chunks run the same arithmetic
        # in the same per-pair order as the serial loop.
        assert result.scores == serial.scores, label
        assert result.matches == serial.matches, label
        assert result.threshold == serial.threshold


# -- PYTHONHASHSEED x backend matrix ------------------------------------------

_SCRIPT = r"""
import hashlib, json, sys
from pathlib import Path

from respdi.catalog import CatalogStore
from respdi.datagen import LakeSpec, generate_lake
from respdi.parallel import ExecutionContext

out_dir, backend = Path(sys.argv[1]), sys.argv[2]
context = (
    ExecutionContext()
    if backend == "serial"
    else ExecutionContext(backend=backend, n_jobs=2)
)
lake = generate_lake(LakeSpec(n_distractors=3), rng=11)
CatalogStore.build(out_dir / "cat", dict(lake.tables), rng=7, context=context)

checksums = {}
for path in sorted((out_dir / "cat").rglob("*")):
    if path.is_file() and path.name != "writer.lock":
        checksums[str(path.relative_to(out_dir / "cat"))] = hashlib.blake2b(
            path.read_bytes(), digest_size=16
        ).hexdigest()
print(json.dumps(checksums))
"""


def _build_in_subprocess(tmp_path: Path, backend: str, hash_seed: str) -> dict:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    out_dir = tmp_path / f"{backend}-{hash_seed}"
    out_dir.mkdir()
    result = subprocess.run(
        [sys.executable, "-c", _SCRIPT, str(out_dir), backend],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(result.stdout)


def test_catalog_bytes_identical_across_backends_and_hash_seeds(tmp_path):
    runs = {
        ("serial", "1"): None,
        ("threads", "2"): None,
        ("processes", "3"): None,
    }
    for backend, seed in runs:
        runs[(backend, seed)] = _build_in_subprocess(tmp_path, backend, seed)
    reference = runs[("serial", "1")]
    assert any(name.startswith("entries/") for name in reference)
    for key, checksums in runs.items():
        assert checksums.keys() == reference.keys(), key
        mismatched = [
            name for name in reference if checksums[name] != reference[name]
        ]
        assert mismatched == [], f"{key} differs from serial baseline: {mismatched}"
