"""Error detection, repair, and §2.4 damage accounting."""

import numpy as np
import pytest

from respdi.cleaning import (
    group_aggregate_damage,
    group_zscore_outliers,
    repair_with_group_statistic,
    zscore_outliers,
)
from respdi.datagen import inject_numeric_errors
from respdi.errors import SpecificationError
from respdi.table import Schema, Table


def two_scale_table(seed=0):
    """Majority at scale 1, minority at scale 1 but mean 50."""
    rng = np.random.default_rng(seed)
    schema = Schema([("g", "categorical"), ("x", "numeric")])
    values = np.concatenate(
        [rng.normal(0, 1, 300), rng.normal(50, 1, 30)]
    )
    groups = ["maj"] * 300 + ["min"] * 30
    return Table(schema, {"g": groups, "x": values})


def test_global_zscore_flags_entire_minority():
    table = two_scale_table()
    flagged = zscore_outliers(table, "x", threshold=3.0)
    minority = np.array([g == "min" for g in table.column("g")])
    # The minority's legitimate values look like outliers globally.
    assert flagged[minority].mean() > 0.9


def test_group_zscore_spares_legitimate_minority_values():
    table = two_scale_table()
    flagged = group_zscore_outliers(table, "x", ["g"], threshold=3.0)
    minority = np.array([g == "min" for g in table.column("g")])
    assert flagged[minority].mean() < 0.1


def test_group_zscore_catches_true_errors(health_table):
    dirty, mask, clean = inject_numeric_errors(
        health_table, "x0", rate=0.05, magnitude=8.0, rng=1
    )
    flagged = group_zscore_outliers(dirty, "x0", ["race"], threshold=4.0)
    recall = flagged[mask].mean()
    false_rate = flagged[~mask].mean()
    assert recall > 0.8
    assert false_rate < 0.02


def test_repair_restores_group_aggregates(health_table):
    dirty, mask, clean = inject_numeric_errors(
        health_table, "x0", rate=0.05, magnitude=8.0, rng=2
    )
    repaired = repair_with_group_statistic(dirty, "x0", mask, ["race"])
    damage_dirty = group_aggregate_damage(health_table, dirty, "x0", ["race"])
    damage_repaired = group_aggregate_damage(health_table, repaired, "x0", ["race"])
    for group in damage_dirty:
        assert damage_repaired[group] <= damage_dirty[group] + 1e-9


def test_small_group_suffers_more_damage():
    """§2.4: the same corruption rate shifts the minority AVG more."""
    rng = np.random.default_rng(3)
    schema = Schema([("g", "categorical"), ("x", "numeric")])
    values = rng.normal(0, 1, 1050)
    groups = ["maj"] * 1000 + ["min"] * 50
    clean = Table(schema, {"g": groups, "x": values})
    damages_min, damages_maj = [], []
    for seed in range(10):
        dirty, mask, _ = inject_numeric_errors(
            clean, "x", rate=0.05, magnitude=6.0, rng=seed
        )
        damage = group_aggregate_damage(clean, dirty, "x", ["g"])
        damages_min.append(damage[("min",)])
        damages_maj.append(damage[("maj",)])
    assert np.mean(damages_min) > 2 * np.mean(damages_maj)


def test_repair_fallback_to_global():
    schema = Schema([("g", "categorical"), ("x", "numeric")])
    table = Table(schema, {"g": ["a", "a", "b"], "x": [1.0, 3.0, 100.0]})
    mask = np.array([False, False, True])  # b's only value flagged
    repaired = repair_with_group_statistic(table, "x", mask, ["g"])
    assert np.asarray(repaired.column("x"), dtype=float)[2] == pytest.approx(2.0)


def test_validations(health_table):
    with pytest.raises(SpecificationError):
        zscore_outliers(health_table, "x0", threshold=0.0)
    with pytest.raises(SpecificationError):
        group_zscore_outliers(health_table, "x0", ["race"], threshold=-1)
    with pytest.raises(SpecificationError, match="statistic"):
        repair_with_group_statistic(
            health_table, "x0", np.zeros(len(health_table), bool), ["race"], "mode"
        )
    with pytest.raises(SpecificationError, match="mask length"):
        repair_with_group_statistic(health_table, "x0", np.zeros(3, bool), ["race"])
    all_flagged = np.ones(len(health_table), dtype=bool)
    with pytest.raises(SpecificationError, match="every value"):
        repair_with_group_statistic(health_table, "x0", all_flagged, ["race"])
    short = health_table.head(5)
    with pytest.raises(SpecificationError, match="align"):
        group_aggregate_damage(health_table, short, "x0", ["race"])
