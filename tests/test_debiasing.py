"""Sample debiasing: post-stratification, raking, weighted queries."""

import numpy as np
import pytest

from respdi.debiasing import (
    WeightedQuery,
    effective_sample_size,
    post_stratification_weights,
    raking_weights,
)
from respdi.errors import EmptyInputError, SpecificationError
from respdi.table import Eq, Schema, Table


def biased_sample(health_population, n=4000, seed=1):
    """Over-samples white patients 9:1 relative to the population."""
    biased = {
        g: (0.45 if g[1] == "white" else 0.05) for g in health_population.groups
    }
    return health_population.sample_biased(n, biased, rng=seed)


def test_post_stratification_matches_population(health_population):
    sample = biased_sample(health_population)
    population = health_population.group_distribution()
    weights = post_stratification_weights(sample, ["gender", "race"], population)
    assert weights.mean() == pytest.approx(1.0)
    # Weighted group shares equal the population's.
    arrays = [sample.column("gender"), sample.column("race")]
    for group, target in population.items():
        mask = np.array(
            [tuple(a[i] for a in arrays) == group for i in range(len(sample))]
        )
        weighted_share = weights[mask].sum() / weights.sum()
        assert weighted_share == pytest.approx(target, abs=1e-9)


def test_debiased_average_closer_to_population_truth():
    """With a strong group effect on the label, the naive mean from a
    white-oversampled set is far from the population rate; the
    post-stratified mean recovers it."""
    from respdi.datagen.population import PopulationModel, SensitiveAttribute

    race = SensitiveAttribute("race", {"white": 0.8, "black": 0.2})
    population = PopulationModel(
        sensitive=[race],
        n_features=2,
        label_weights=[0.0, 0.0],  # label driven purely by group
        group_label_bias={("black",): -2.0},
        group_signal=0.0,
    )
    # Analytic truth: P(y|white)=sigmoid(0)=0.5, P(y|black)=sigmoid(-2).
    truth = 0.8 * 0.5 + 0.2 * (1 / (1 + np.exp(2.0)))
    sample = population.sample_biased(
        6000, {("white",): 0.95, ("black",): 0.05}, rng=9
    )
    naive = sample.aggregate("y", "mean")
    weights = post_stratification_weights(
        sample, ["race"], population.group_distribution()
    )
    debiased = WeightedQuery(sample, weights).avg("y")
    assert abs(naive - truth) > 0.03  # the bias is real
    assert abs(debiased - truth) < 0.02
    assert abs(debiased - truth) < abs(naive - truth)


def test_post_stratification_missing_stratum_rejected(health_population):
    sample = health_population.sample_biased(
        200, {("F", "white"): 1.0}, rng=2
    )
    with pytest.raises(SpecificationError, match="absent from the sample"):
        post_stratification_weights(
            sample, ["gender", "race"], health_population.group_distribution()
        )


def test_raking_matches_both_marginals(health_population):
    sample = biased_sample(health_population)
    marginals = {
        "gender": {"F": 0.5, "M": 0.5},
        "race": {"white": 0.8, "black": 0.2},
    }
    weights = raking_weights(sample, marginals)
    for attribute, target in marginals.items():
        column = sample.column(attribute)
        for value, share in target.items():
            weighted = weights[column == value].sum() / weights.sum()
            assert weighted == pytest.approx(share, abs=1e-6)


def test_raking_single_marginal_equals_post_stratification(health_population):
    sample = biased_sample(health_population)
    marginal = {"race": {"white": 0.8, "black": 0.2}}
    raked = raking_weights(sample, marginal)
    post = post_stratification_weights(
        sample.project(["race"]), ["race"], {("white",): 0.8, ("black",): 0.2}
    )
    assert np.allclose(raked, post)


def test_raking_missing_value_rejected(health_population):
    sample = health_population.sample_biased(
        100, {("F", "white"): 1.0}, rng=3
    )
    with pytest.raises(SpecificationError, match="absent from the sample"):
        raking_weights(sample, {"race": {"white": 0.5, "black": 0.5}})


def test_effective_sample_size():
    assert effective_sample_size(np.ones(100)) == pytest.approx(100.0)
    skewed = np.array([10.0] + [0.1] * 99)
    assert effective_sample_size(skewed) < 10
    with pytest.raises(EmptyInputError):
        effective_sample_size([])
    with pytest.raises(SpecificationError):
        effective_sample_size([-1.0])
    with pytest.raises(SpecificationError):
        effective_sample_size([0.0, 0.0])


def test_weighted_query_operations():
    schema = Schema([("g", "categorical"), ("x", "numeric")])
    table = Table.from_rows(
        schema, [("a", 1.0), ("a", 3.0), ("b", 10.0), ("b", None)]
    )
    weights = np.array([1.0, 1.0, 2.0, 2.0])
    query = WeightedQuery(table, weights)
    assert query.fraction(Eq("g", "b")) == pytest.approx(4 / 6)
    assert query.count() == pytest.approx(4.0)
    assert query.count(Eq("g", "a")) == pytest.approx(2 / 1.5)
    assert query.avg("x") == pytest.approx((1 + 3 + 20) / 4)
    assert query.sum("x", Eq("g", "b")) == pytest.approx(20 / 1.5)
    group_means = query.group_avg("x", ["g"])
    assert group_means[("a",)] == pytest.approx(2.0)
    assert group_means[("b",)] == pytest.approx(10.0)


def test_weighted_query_validations():
    schema = Schema([("x", "numeric")])
    table = Table.from_rows(schema, [(1.0,)])
    with pytest.raises(SpecificationError):
        WeightedQuery(table, [1.0, 2.0])
    with pytest.raises(SpecificationError):
        WeightedQuery(table, [-1.0])
    with pytest.raises(SpecificationError):
        WeightedQuery(table, [0.0])
