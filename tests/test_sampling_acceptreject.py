"""Chaudhuri et al. accept-reject join sampling: uniformity and regimes."""

import numpy as np
import pytest

from respdi.errors import EmptyInputError, SpecificationError
from respdi.sampling import AcceptRejectJoinSampler, full_join
from respdi.stats import chi_square_goodness_of_fit
from respdi.table import Schema, Table


def zipf_tables(seed=0, n=150):
    rng = np.random.default_rng(seed)
    keys = [f"k{i}" for i in range(12)]
    schema_l = Schema([("k", "categorical"), ("a", "numeric")])
    schema_r = Schema([("k", "categorical"), ("b", "numeric")])
    left = Table.from_rows(
        schema_l,
        [
            (keys[min(int(rng.zipf(1.6)) - 1, 11)], float(i))
            for i in range(n)
        ],
    )
    right = Table.from_rows(
        schema_r,
        [
            (keys[min(int(rng.zipf(1.6)) - 1, 11)], float(i))
            for i in range(n)
        ],
    )
    return left, right


def test_samples_are_valid_join_tuples():
    left, right = zipf_tables()
    sampler = AcceptRejectJoinSampler(left, right, "k", rng=1)
    sample = sampler.sample(100)
    assert len(sample) == 100
    joined = full_join(left, right, ["k"])
    valid_keys = set(joined.column("k"))
    assert set(sample.column("k")) <= valid_keys


def test_uniformity_over_join_result():
    """Chi-square test: the per-key share of samples matches the key's
    share of the full join."""
    left, right = zipf_tables(seed=3)
    joined = full_join(left, right, ["k"])
    key_share = {}
    for key, count in joined.value_counts("k").items():
        key_share[key] = count / len(joined)
    sampler = AcceptRejectJoinSampler(left, right, "k", rng=4)
    sample = sampler.sample(5000)
    observed_counts = sample.value_counts("k")
    keys = sorted(key_share)
    observed = [observed_counts.get(k, 0) for k in keys]
    expected = [key_share[k] for k in keys]
    _, p_value = chi_square_goodness_of_fit(observed, expected)
    assert p_value > 0.001


def test_upper_bound_regime_matches_exact_distribution():
    left, right = zipf_tables(seed=5)
    exact = AcceptRejectJoinSampler(left, right, "k", rng=6)
    bounded = AcceptRejectJoinSampler(
        left, right, "k", statistics="upper_bound",
        frequency_upper_bound=len(right), rng=6,
    )
    exact_sample = exact.sample(3000)
    bounded_sample = bounded.sample(3000)
    exact_share = {
        k: v / 3000 for k, v in exact_sample.value_counts("k").items()
    }
    bounded_share = {
        k: v / 3000 for k, v in bounded_sample.value_counts("k").items()
    }
    for key in exact_share:
        assert bounded_share.get(key, 0.0) == pytest.approx(
            exact_share[key], abs=0.05
        )


def test_upper_bound_lowers_acceptance():
    left, right = zipf_tables(seed=7)
    exact = AcceptRejectJoinSampler(left, right, "k", rng=8)
    loose = AcceptRejectJoinSampler(
        left, right, "k", statistics="upper_bound",
        frequency_upper_bound=5 * len(right), rng=8,
    )
    exact.sample(300)
    loose.sample(300)
    assert loose.stats.acceptance_rate < exact.stats.acceptance_rate


def test_bound_below_max_fanout_rejected():
    left, right = zipf_tables()
    with pytest.raises(SpecificationError, match="below the true maximum"):
        AcceptRejectJoinSampler(
            left, right, "k", statistics="upper_bound", frequency_upper_bound=1
        )


def test_missing_keys_never_sampled():
    schema_l = Schema([("k", "categorical"), ("a", "numeric")])
    schema_r = Schema([("k", "categorical"), ("b", "numeric")])
    left = Table.from_rows(schema_l, [("x", 1.0), (None, 2.0)])
    right = Table.from_rows(schema_r, [("x", 3.0), (None, 4.0)])
    sampler = AcceptRejectJoinSampler(left, right, "k", rng=9)
    sample = sampler.sample(50)
    assert set(sample.column("k")) == {"x"}


def test_attempt_cap_raises():
    schema_l = Schema([("k", "categorical")])
    schema_r = Schema([("k", "categorical")])
    left = Table.from_rows(schema_l, [("a",)] * 10)
    right = Table.from_rows(schema_r, [("b",)] * 10)  # join is empty
    sampler = AcceptRejectJoinSampler(left, right, "k", rng=10)
    with pytest.raises(EmptyInputError, match="attempts"):
        sampler.sample(1, max_attempts=100)


def test_validations():
    left, right = zipf_tables()
    with pytest.raises(SpecificationError, match="regime"):
        AcceptRejectJoinSampler(left, right, "k", statistics="guess")
    with pytest.raises(SpecificationError, match="frequency_upper_bound"):
        AcceptRejectJoinSampler(left, right, "k", statistics="upper_bound")
    sampler = AcceptRejectJoinSampler(left, right, "k", rng=0)
    with pytest.raises(SpecificationError):
        sampler.sample(0)
