"""Wander join: independent non-uniform walks, HT-corrected."""

import numpy as np
import pytest

from respdi.errors import EmptyInputError, SpecificationError
from respdi.sampling import ChainJoinSpec, WanderJoin, full_join
from respdi.table import Schema, Table


def tables(seed=0, n=80):
    rng = np.random.default_rng(seed)
    keys = [f"k{i}" for i in range(6)]
    schema_l = Schema([("k", "categorical"), ("a", "numeric")])
    schema_r = Schema([("k", "categorical"), ("b", "numeric")])
    left = Table.from_rows(
        schema_l,
        [(keys[int(rng.integers(6))], float(rng.normal())) for _ in range(n)],
    )
    right = Table.from_rows(
        schema_r,
        [(keys[int(rng.integers(6))], float(rng.normal())) for _ in range(n)],
    )
    return left, right


def test_count_estimate_unbiased():
    left, right = tables(seed=1)
    joined = full_join(left, right, ["k"])
    spec = ChainJoinSpec([left, right], [("k", "k")])
    wander = WanderJoin(spec, rng=2)
    final = wander.run(8000)[-1]
    assert final.count_estimate == pytest.approx(len(joined), rel=0.1)


def test_sum_estimate_unbiased():
    left, right = tables(seed=3)
    joined = full_join(left, right, ["k"])
    true_sum = joined.aggregate("b", "sum")
    spec = ChainJoinSpec([left, right], [("k", "k")])
    wander = WanderJoin(spec, expression=lambda rows: rows[1]["b"], rng=4)
    final = wander.run(12000)[-1]
    assert final.sum_estimate == pytest.approx(true_sum, abs=0.2 * abs(true_sum) + 30)


def test_three_table_chain():
    left, right = tables(seed=5)
    third = right.rename({"b": "c"})
    spec = ChainJoinSpec([left, right, third], [("k", "k"), ("k", "k")])
    from respdi.sampling import ChainJoinSampler

    oracle = ChainJoinSampler(spec, rng=0).join_size
    wander = WanderJoin(spec, rng=6)
    final = wander.run(8000)[-1]
    assert final.count_estimate == pytest.approx(oracle, rel=0.15)


def test_failed_walks_counted():
    schema = Schema([("k", "categorical")])
    left = Table.from_rows(schema, [("x",), ("dead",)])
    right = Table.from_rows(schema, [("x",)])
    spec = ChainJoinSpec([left, right], [("k", "k")])
    wander = WanderJoin(spec, rng=7)
    final = wander.run(2000)[-1]
    assert 0.3 < final.success_rate < 0.7
    # Join size is 1; HT correction accounts for failures.
    assert final.count_estimate == pytest.approx(1.0, abs=0.15)


def test_trajectory_recording():
    left, right = tables(seed=8)
    spec = ChainJoinSpec([left, right], [("k", "k")])
    wander = WanderJoin(spec, rng=9)
    trajectory = wander.run(1000, record_every=250)
    assert [t.walks for t in trajectory] == [250, 500, 750, 1000]


def test_estimate_before_walks():
    left, right = tables()
    spec = ChainJoinSpec([left, right], [("k", "k")])
    wander = WanderJoin(spec, rng=10)
    estimate = wander.estimate()
    assert estimate.walks == 0 and estimate.count_estimate == 0.0


def test_validations():
    left, right = tables()
    spec = ChainJoinSpec([left, right], [("k", "k")])
    wander = WanderJoin(spec, rng=11)
    with pytest.raises(SpecificationError):
        wander.run(0)
    with pytest.raises(SpecificationError):
        wander.run(10, record_every=0)
    empty = Table.empty(left.schema)
    with pytest.raises(EmptyInputError):
        WanderJoin(ChainJoinSpec([empty, right], [("k", "k")]), rng=0)
