"""Composed stress: the ingest daemon churns while socket clients query.

The two long-lived subsystems, finally in one process: a ``watch``-style
:class:`IngestDaemon` continuously rewrites and re-ingests the lake
while four concurrent socket clients query through a shared
:class:`QueryService`.  The externally-observable contracts:

* **zero torn reads** — every response's ``generation`` maps to exactly
  one committed (version) state the writer produced; no response ever
  renders a mix of versions;
* **differential truth** — every response's results are byte-identical
  to what a from-scratch catalog built at that response's version
  renders for the same query;
* the daemon's final catalog verifies clean, and clients observed the
  generation actually advancing (the composition exercised re-pin, not
  a static catalog).
"""

import json
import socket
import threading

import pytest

from respdi.catalog import CatalogStore
from respdi.ingest import IngestDaemon
from respdi.service import KeywordQuery, QueryService, SocketQueryServer
from respdi.table import Schema, Table, write_csv

SCHEMA = Schema([("key", "categorical"), ("value", "numeric")])
OPTS = dict(rng=7, num_hashes=16, sketch_size=16)
TABLE_NAMES = ("alpha", "beta")
QUERY = KeywordQuery(text="alpha", k=3)
REQUEST = {"op": "keyword", "text": "alpha", "k": 3}


def _version_tables(version):
    out = {}
    for name in TABLE_NAMES:
        rows = [
            (f"{name}_v{version}_{i}", float(i) + version) for i in range(6)
        ]
        out[name] = Table.from_rows(SCHEMA, rows)
    return out


def _write_lake(lake, version):
    for name, table in _version_tables(version).items():
        write_csv(table, lake / f"{name}.csv")


def _rendered_cold(tmp_path, version):
    cold_dir = tmp_path / f"cold-v{version}"
    if not cold_dir.exists():
        CatalogStore.build(cold_dir, _version_tables(version), **OPTS)
    result = QueryService(cold_dir).query(QUERY)
    return json.dumps(QUERY.render(result), sort_keys=True)


def _run_composed(tmp_path, cycles, clients, versions):
    lake = tmp_path / "lake"
    lake.mkdir()
    _write_lake(lake, 0)
    catalog_dir = tmp_path / "cat"
    CatalogStore.build(catalog_dir, _version_tables(0), **OPTS)

    service = QueryService(catalog_dir, cache_size=64)
    daemon = IngestDaemon(catalog_dir, lake, interval=0.0, service=service)
    server = SocketQueryServer(service)
    server.start()

    generation_versions = {service.snapshot().generation: 0}
    done = threading.Event()
    errors = []
    lock = threading.Lock()
    responses = []  # (generation, rendered results) per served response

    def writer():
        try:
            for cycle in range(1, cycles + 1):
                _write_lake(lake, cycle % versions)
                result = daemon.run_cycle()
                assert result.refreshed == len(TABLE_NAMES), result.summary()
                generation_versions[service.snapshot().generation] = (
                    cycle % versions
                )
        except BaseException as exc:  # pragma: no cover - only on bug
            errors.append(exc)
        finally:
            done.set()

    def client():
        try:
            with socket.create_connection(server.address, timeout=30) as conn:
                reader = conn.makefile("r", encoding="utf-8", newline="\n")
                out = conn.makefile("w", encoding="utf-8", newline="\n")
                reads = 0
                last_generation = None
                while not done.is_set() or reads == 0:
                    out.write(json.dumps(REQUEST) + "\n")
                    out.flush()
                    response = json.loads(reader.readline())
                    assert response["ok"], response
                    generation = response["generation"]
                    # Within one connection generations never go back.
                    if last_generation is not None:
                        assert generation >= last_generation
                    last_generation = generation
                    with lock:
                        responses.append((
                            generation,
                            json.dumps(response["results"], sort_keys=True),
                        ))
                    reads += 1
        except BaseException as exc:  # pragma: no cover - only on bug
            errors.append(exc)
            done.set()

    threads = [threading.Thread(target=writer)] + [
        threading.Thread(target=client) for _ in range(clients)
    ]
    try:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not any(thread.is_alive() for thread in threads)
    finally:
        server.stop()
    assert errors == [], errors
    assert len(responses) >= clients  # every client really queried

    # Zero torn reads: every served generation is one the writer
    # committed (never an in-between state), and its rendered results
    # are byte-identical to the cold rebuild at that version.
    unknown = [g for g, _ in responses if g not in generation_versions]
    assert unknown == [], f"responses at uncommitted generations: {unknown}"
    expected = {
        version: _rendered_cold(tmp_path, version)
        for version in sorted(set(generation_versions.values()))
    }
    mismatched = [
        (generation, rendered)
        for generation, rendered in responses
        if rendered != expected[generation_versions[generation]]
    ]
    assert mismatched == [], f"served != cold rebuild: {mismatched[:2]}"

    # The daemon left a committed, verifiable catalog behind.
    store = CatalogStore.open(catalog_dir)
    assert store.verify() == []
    return responses


def test_socket_clients_survive_continuous_ingestion_smoke(tmp_path):
    _run_composed(tmp_path, cycles=5, clients=2, versions=3)


@pytest.mark.slow
def test_four_socket_clients_under_sustained_ingestion(tmp_path):
    responses = _run_composed(tmp_path, cycles=30, clients=4, versions=4)
    # The composition must have exercised re-pin under live clients:
    # more than one committed generation was actually served.
    assert len({generation for generation, _ in responses}) >= 2
