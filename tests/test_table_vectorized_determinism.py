"""Vectorized table-core determinism across processes and warm catalogs.

Two guarantees beyond the in-process differential suite:

* **PYTHONHASHSEED matrix** — signatures sign ``set(values)`` and the
  memo caches key on values, so per-process hash randomization perturbs
  every iteration order the vectorized paths see; the emitted artifacts
  must still be byte-identical across seeds.
* **Warm-catalog compatibility** — a catalog on disk opens warm under
  the vectorized code: refreshing the identical tables re-sketches
  nothing, because the streamed fingerprints reproduce the stored ones
  exactly (the golden fixture pins them to the seed scalar output).
"""

import json
import os
import subprocess
import sys
from pathlib import Path

from respdi.catalog.store import CatalogStore, table_fingerprint
from respdi.datagen.lake import LakeSpec, generate_lake

SRC = str(Path(__file__).resolve().parent.parent / "src")

_SCRIPT = """
import json, sys
import numpy as np
from respdi.discovery.correlation_sketches import CorrelationSketch
from respdi.discovery.minhash import MinHasher
from respdi.table.hashing import salted_hash64_list, stable_hash32_list
import tests.data.gen_seed_golden as gen

tables = gen.golden_tables()
values = set(gen.TRICKY_VALUES) | {f"extra-{i}" for i in range(100)}

hasher = MinHasher(num_hashes=32, rng=5)
keys = [f"k{i % 9}" if i % 13 else None for i in range(40)]
vals = [float("nan") if i % 5 == 0 else float(i) * 0.5 for i in range(40)]
sketch = CorrelationSketch.build(keys, vals, size=8, seed=17)

from respdi.catalog.store import table_fingerprint
print(json.dumps({
    "hash32": sorted(stable_hash32_list(values)),
    "salted": sorted(salted_hash64_list(values, 17)),
    "signature": hasher.signature(values).values.tolist(),
    "fingerprints": {n: table_fingerprint(t) for n, t in tables.items()},
    "sketch": [[h, repr(k), v] for h, k, v in sketch.entries],
}))
"""


def _run_vectorized(hash_seed: str) -> dict:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    root = str(Path(__file__).resolve().parent.parent)
    env["PYTHONPATH"] = (
        SRC + os.pathsep + root + os.pathsep + env.get("PYTHONPATH", "")
    )
    result = subprocess.run(
        [sys.executable, "-c", _SCRIPT],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(result.stdout)


def test_vectorized_artifacts_identical_across_hash_seeds():
    first = _run_vectorized("1")
    second = _run_vectorized("2")
    assert first == second
    # And they match the recorded seed-scalar golden values.
    golden = json.loads(
        (Path(__file__).parent / "data" / "seed_golden.json").read_text()
    )
    assert first["fingerprints"] == golden["table_fingerprints"]
    assert first["sketch"] == golden["correlation_sketch"]["entries"]


def test_existing_catalog_opens_warm_zero_resketches(tmp_path):
    lake = generate_lake(LakeSpec(n_distractors=4), rng=11)
    tables = dict(lake.tables)
    CatalogStore.build(tmp_path / "cat", tables, rng=7)

    reopened = CatalogStore.open(tmp_path / "cat")
    rebuilt = reopened.refresh_many(tables)
    assert rebuilt == {name: False for name in tables}

    # The stored fingerprints are exactly what the streamed path computes.
    for name, table in tables.items():
        assert reopened.meta(name)["fingerprint"] == table_fingerprint(table)

    # The warm index rehydrates every table from persisted artifacts.
    index = reopened.index()
    assert set(index.table_names) == set(tables)
