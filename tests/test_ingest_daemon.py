"""IngestDaemon end-to-end: cycles, metrics, lifecycle, CLI, audit wiring.

One daemon cycle is scan → apply → publish; these tests pin the whole
arc on plain and sharded catalogs — what a cycle commits, that a second
cycle over an unchanged lake is free, the obs counters/gauges the cycle
maintains, eager re-pin of an attached :class:`QueryService`, the
background thread lifecycle (including error propagation through
``stop``), the ``respdi-catalog watch`` CLI, and the ingest-health
block ``respdi-audit --metrics`` renders from the same registry.
"""

import time

import pytest

from respdi import obs
from respdi.catalog import CatalogStore, ShardedCatalogStore, open_catalog
from respdi.catalog.cli import main as catalog_main
from respdi.cli import main as audit_main
from respdi.errors import SpecificationError
from respdi.ingest import IngestDaemon, committed_fingerprints
from respdi.ingest.writer import generation_scalar
from respdi.service import KeywordQuery, QueryService
from respdi.table import Schema, Table, write_csv

SCHEMA = Schema([("key", "categorical"), ("value", "numeric")])
OPTS = dict(rng=7, num_hashes=16, sketch_size=16)


def _table(tag, n=6, offset=0.0):
    rows = [(f"{tag}_{i}", float(i) + offset) for i in range(n)]
    return Table.from_rows(SCHEMA, rows)


TABLES = {"alpha": _table("a"), "beta": _table("b"), "gamma": _table("g")}


def _write_lake(lake, tables):
    lake.mkdir(parents=True, exist_ok=True)
    for name, table in tables.items():
        write_csv(table, lake / f"{name}.csv")
    return lake


def _mutate_lake(lake):
    """The canonical +1 ~1 -1 lake edit the tests below apply."""
    write_csv(_table("b", offset=100.0), lake / "beta.csv")
    (lake / "gamma.csv").unlink()
    write_csv(_table("d"), lake / "delta.csv")


@pytest.fixture
def lake(tmp_path):
    return _write_lake(tmp_path / "lake", TABLES)


@pytest.fixture
def catalog_dir(tmp_path):
    CatalogStore.build(tmp_path / "cat", TABLES, **OPTS)
    return tmp_path / "cat"


# -- one cycle -----------------------------------------------------------------


def test_run_cycle_commits_the_diff_then_goes_idle(lake, catalog_dir):
    _mutate_lake(lake)
    daemon = IngestDaemon(catalog_dir, lake)
    result = daemon.run_cycle()
    assert (result.added, result.refreshed, result.removed) == (1, 1, 1)
    assert result.applied and result.scanned == 3
    # Three mutation phases, one commit each: add, refresh, remove.
    assert result.generation == 2 + 3
    assert result.lag_seconds > 0.0
    assert "generation=5" in result.summary() and "lag=" in result.summary()

    store = CatalogStore.open(catalog_dir)
    assert sorted(store.names) == ["alpha", "beta", "delta"]
    assert store.verify() == []

    # The lake now matches the catalog: the next cycle is a no-op and
    # commits nothing (the fingerprint short-circuit end to end).
    second = daemon.run_cycle()
    assert not second.applied and second.generation == 5
    assert second.summary() == "cycle 2: +0 ~0 -0 generation=5"


def test_run_cycle_routes_through_shards(tmp_path, lake):
    ShardedCatalogStore.build(tmp_path / "cat", TABLES, num_shards=2, **OPTS)
    _mutate_lake(lake)
    daemon = IngestDaemon(tmp_path / "cat", lake)  # open_catalog dispatch
    result = daemon.run_cycle()
    assert (result.added, result.refreshed, result.removed) == (1, 1, 1)
    assert isinstance(result.generation, tuple) and len(result.generation) == 2
    store = open_catalog(tmp_path / "cat")
    assert sorted(store.names) == ["alpha", "beta", "delta"]
    assert store.verify() == []
    assert daemon.run_cycle().summary().startswith("cycle 2: +0 ~0 -0")


def test_cycle_maintains_counters_and_gauges(lake, catalog_dir):
    obs.enable()
    obs.reset()
    try:
        daemon = IngestDaemon(catalog_dir, lake)
        _mutate_lake(lake)
        daemon.run_cycle()
        daemon.run_cycle()  # idle cycle: counted, but no apply metrics
        snapshot = obs.global_registry().snapshot()
        counters = snapshot["counters"]
        assert counters["ingest.cycles"] == 2.0
        assert counters["ingest.scans"] == 2.0
        assert counters["ingest.tables_added"] == 1.0
        assert counters["ingest.tables_refreshed"] == 1.0
        assert counters["ingest.tables_removed"] == 1.0
        gauges = snapshot["gauges"]
        assert gauges["ingest.lag_seconds"] > 0.0
        assert gauges["catalog.generation"] == generation_scalar(daemon.store)
    finally:
        obs.disable()
        obs.reset()


def test_attached_service_is_repinned_eagerly(lake, catalog_dir):
    service = QueryService(catalog_dir)
    assert service.query(KeywordQuery(text="alpha", k=3))  # pin generation 2
    assert service.stats()["generation"] == 2
    daemon = IngestDaemon(catalog_dir, lake, service=service)
    _mutate_lake(lake)
    result = daemon.run_cycle()
    # No query issued since the cycle, yet the pin already moved: the
    # daemon's auto-re-pin reloaded the service after the apply.
    assert service.stats()["generation"] == result.generation == 5
    hits = service.query(KeywordQuery(text="delta", k=3))
    assert "delta" in [hit.table_name for hit in hits]


# -- the loop ------------------------------------------------------------------


def test_run_respects_max_cycles_and_reports_each(lake, catalog_dir):
    results = []
    daemon = IngestDaemon(catalog_dir, lake, interval=0.0)
    assert daemon.run(max_cycles=3, on_cycle=results.append) == 3
    assert [r.cycle for r in results] == [1, 2, 3]
    assert not any(r.applied for r in results)  # lake already cataloged


def test_background_daemon_picks_up_new_tables(lake, catalog_dir):
    daemon = IngestDaemon(catalog_dir, lake, interval=0.01)
    with daemon:
        write_csv(_table("d"), lake / "delta.csv")
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if "delta" in committed_fingerprints(catalog_dir):
                break
            time.sleep(0.01)
    assert "delta" in committed_fingerprints(catalog_dir)
    assert daemon.cycles >= 1
    assert CatalogStore.open(catalog_dir).verify() == []


def test_stop_reraises_a_loop_error(tmp_path, catalog_dir):
    # Two sources mapping one stem make every scan raise: the background
    # loop dies, and stop() must surface that instead of swallowing it.
    _write_lake(tmp_path / "a", {"alpha": TABLES["alpha"]})
    _write_lake(tmp_path / "b", {"alpha": TABLES["beta"]})
    daemon = IngestDaemon(
        catalog_dir, [tmp_path / "a", tmp_path / "b"], interval=0.01
    )
    daemon.start()
    deadline = time.monotonic() + 30.0
    while daemon._error is None and time.monotonic() < deadline:
        time.sleep(0.01)
    with pytest.raises(SpecificationError, match="two files"):
        daemon.stop()


def test_start_twice_is_rejected(lake, catalog_dir):
    daemon = IngestDaemon(catalog_dir, lake, interval=60.0)
    daemon.start()
    try:
        with pytest.raises(SpecificationError, match="already running"):
            daemon.start()
    finally:
        daemon.stop()


def test_negative_interval_is_rejected(lake, catalog_dir):
    with pytest.raises(SpecificationError, match="interval"):
        IngestDaemon(catalog_dir, lake, interval=-1.0)


# -- respdi-catalog watch ------------------------------------------------------


def test_cli_watch_once_applies_and_reports(lake, catalog_dir, capsys):
    _mutate_lake(lake)
    code = catalog_main(["watch", str(catalog_dir), str(lake), "--once"])
    assert code == 0
    captured = capsys.readouterr()
    assert "cycle 1: +1 ~1 -1 generation=5" in captured.out
    assert "watching 1 source(s)" in captured.err
    assert "ran 1 cycle(s)" in captured.err
    assert sorted(CatalogStore.open(catalog_dir).names) == [
        "alpha", "beta", "delta",
    ]


def test_cli_watch_max_cycles_counts_idle_cycles(lake, catalog_dir, capsys):
    code = catalog_main(
        ["watch", str(catalog_dir), str(lake), "--max-cycles", "2",
         "--interval", "0"]
    )
    assert code == 0
    captured = capsys.readouterr()
    assert "cycle 2: +0 ~0 -0" in captured.out
    assert "ran 2 cycle(s)" in captured.err


# -- respdi-audit --metrics wiring ---------------------------------------------


def test_audit_metrics_renders_ingest_health_block(lake, catalog_dir, capsys):
    csv = str(lake / "alpha.csv")
    obs.enable()
    obs.reset()
    try:
        # Before any daemon activity the block is absent entirely.
        assert audit_main([csv, "--sensitive", "key", "--metrics"]) == 0
        assert "ingest daemon health" not in capsys.readouterr().out

        _mutate_lake(lake)
        IngestDaemon(catalog_dir, lake).run_cycle()
        assert audit_main([csv, "--sensitive", "key", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "=== ingest daemon health ===" in out
        assert "ingest.cycles: 1" in out
        assert "ingest.tables_refreshed: 1" in out
        assert "ingest.lag_seconds:" in out
        assert "catalog.generation: 5" in out
    finally:
        obs.disable()
        obs.reset()
