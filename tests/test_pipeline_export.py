"""The pipeline's artifact-bundle export."""

import json

import pytest

from respdi import ResponsibleIntegrationPipeline
from respdi.datagen import make_source_tables, skewed_group_distributions
from respdi.datagen.population import default_health_population
from respdi.requirements import GroupRepresentationRequirement
from respdi.table import read_csv
from respdi.tailoring import CountSpec


@pytest.fixture(scope="module")
def result():
    population = default_health_population(minority_fraction=0.25)
    distributions = skewed_group_distributions(
        population.group_distribution(), 2, concentration=8.0, rng=71
    )
    sources = {
        f"s{i}": t
        for i, t in enumerate(
            make_source_tables(population, distributions, 1200, rng=72)
        )
    }
    pipeline = ResponsibleIntegrationPipeline(("gender", "race"), target_column="y")
    spec = CountSpec(("gender", "race"), {g: 20 for g in population.groups})
    return pipeline.run(
        sources,
        spec,
        requirements=[GroupRepresentationRequirement(("gender", "race"), 15)],
        rng=73,
    )


def test_export_writes_all_artifacts(result, tmp_path):
    paths = result.export(tmp_path / "bundle")
    assert set(paths) == {"data", "label", "datasheet", "audit", "provenance"}
    # Data round-trips.
    assert read_csv(paths["data"]).equals(result.table)
    # JSON artifacts parse.
    with open(paths["label"]) as handle:
        label = json.load(handle)
    assert label["rows"] == len(result.table)
    with open(paths["audit"]) as handle:
        audit = json.load(handle)
    assert audit["passed"] == result.audit.passed
    # Text artifacts non-empty.
    with open(paths["datasheet"]) as handle:
        assert handle.read().startswith("# Datasheet")
    with open(paths["provenance"]) as handle:
        assert "tailoring" in handle.read()


def test_export_without_audit(result, tmp_path):
    import copy

    no_audit = copy.copy(result)
    no_audit.audit = None
    paths = no_audit.export(tmp_path / "bundle2")
    assert "audit" not in paths
    assert "data" in paths
