"""Uniform sampling over the union of sources."""

import pytest

from respdi.errors import EmptyInputError, SpecificationError
from respdi.sampling import UnionSampler
from respdi.stats import chi_square_uniformity
from respdi.table import Schema, Table


def id_table(ids):
    schema = Schema([("_id", "categorical"), ("x", "numeric")])
    return Table.from_rows(schema, [(i, float(hash(i) % 7)) for i in ids])


def test_disjoint_sources_uniform_over_bag():
    # Sizes 100 and 300: records of either source equally likely.
    a = id_table([f"a{i}" for i in range(100)])
    b = id_table([f"b{i}" for i in range(300)])
    sampler = UnionSampler([a, b], rng=1)
    assert sampler.union_size == 400
    sample = sampler.sample(8000)
    share_a = sum(1 for v in sample.column("_id") if v.startswith("a")) / 8000
    assert share_a == pytest.approx(100 / 400, abs=0.02)
    assert sampler.stats.acceptance_rate == 1.0


def test_overlap_correction_restores_uniformity():
    # 'shared' ids exist in both sources: without correction they would
    # be drawn twice as often.
    shared = [f"s{i}" for i in range(50)]
    only_a = [f"a{i}" for i in range(50)]
    only_b = [f"b{i}" for i in range(50)]
    a = id_table(shared + only_a)
    b = id_table(shared + only_b)
    sampler = UnionSampler([a, b], identity_column="_id", rng=2)
    assert sampler.union_size == 150
    sample = sampler.sample(9000)
    counts = sample.value_counts("_id")
    shared_draws = sum(counts.get(i, 0) for i in shared)
    unique_draws = sum(counts.get(i, 0) for i in only_a + only_b)
    # 50 shared vs 100 unique identities: a uniform sampler draws shared
    # ids 1/3 of the time.
    assert shared_draws / 9000 == pytest.approx(1 / 3, abs=0.03)
    # Per-identity chi-square uniformity across all 150 identities.
    observed = [counts.get(i, 0) for i in shared + only_a + only_b]
    _, p = chi_square_uniformity(observed)
    assert p > 0.001


def test_without_identity_bag_semantics():
    shared = [f"s{i}" for i in range(50)]
    a = id_table(shared)
    b = id_table(shared)
    sampler = UnionSampler([a, b], rng=3)
    assert sampler.union_size == 100  # bag: both copies count
    assert sampler.sample(100).num_rows == 100


def test_empty_source_tolerated():
    a = id_table([f"a{i}" for i in range(10)])
    empty = Table.empty(a.schema)
    sampler = UnionSampler([a, empty], rng=4)
    sample = sampler.sample(50)
    assert len(sample) == 50


def test_validations():
    a = id_table(["x"])
    incompatible = Table.from_rows(Schema([("y", "numeric")]), [(1.0,)])
    with pytest.raises(SpecificationError):
        UnionSampler([])
    with pytest.raises(SpecificationError, match="union-compatible"):
        UnionSampler([a, incompatible])
    with pytest.raises(EmptyInputError):
        UnionSampler([Table.empty(a.schema)])
    sampler = UnionSampler([a], rng=5)
    with pytest.raises(SpecificationError):
        sampler.sample(0)
