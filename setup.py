"""Legacy setup shim.

The environment has no ``wheel`` package and no network access, so the
PEP 660 editable-install path (which needs ``bdist_wheel``) fails.  This
file enables ``pip install -e . --no-use-pep517 --no-build-isolation``.
Metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
