"""E6 — Coverage / MUP identification (Asudeh'19, '21).

Reproduced shapes:
* the pattern-breaker traversal evaluates far fewer patterns than naive
  lattice enumeration, with the gap widening in dimensionality;
* the MUP count and the uncovered-volume estimate grow as the coverage
  threshold grows;
* greedy enhancement proposes few combinations relative to the MUP count
  (rows are shared across compatible MUPs).
"""

import numpy as np
import pytest
from benchmarks.conftest import print_table

from respdi.coverage import CoverageAnalyzer, OrdinalCoverage, full_coverage_plan
from respdi.table import ColumnType, Schema, Table


def categorical_table(n_rows, n_attrs, cardinality=3, seed=0, skew=2.0):
    rng = np.random.default_rng(seed)
    weights = np.array([1.0 / (i + 1) ** skew for i in range(cardinality)])
    weights /= weights.sum()
    schema = Schema([(f"a{i}", ColumnType.CATEGORICAL) for i in range(n_attrs)])
    columns = {
        f"a{i}": [
            f"v{j}" for j in rng.choice(cardinality, size=n_rows, p=weights)
        ]
        for i in range(n_attrs)
    }
    return Table(schema, columns)


@pytest.fixture(scope="module")
def traversal_results():
    rows = []
    for n_attrs in (3, 4, 5, 6):
        table = categorical_table(2000, n_attrs, seed=n_attrs)
        attributes = [f"a{i}" for i in range(n_attrs)]
        analyzer = CoverageAnalyzer(table, attributes, threshold=25)
        fast = analyzer.mups()
        fresh = CoverageAnalyzer(table, attributes, threshold=25)
        naive = fresh.mups_naive()
        assert sorted(map(repr, fast.mups)) == sorted(map(repr, naive.mups))
        rows.append(
            (
                n_attrs,
                len(fast.mups),
                fast.patterns_evaluated,
                naive.patterns_evaluated,
                round(naive.patterns_evaluated / fast.patterns_evaluated, 2),
            )
        )
    print_table(
        "E6a: pattern-breaker vs naive enumeration",
        ["attrs", "#MUPs", "breaker evals", "naive evals", "speedup"],
        rows,
    )
    return rows


def test_breaker_prunes_and_gap_grows(traversal_results):
    speedups = [row[4] for row in traversal_results]
    assert all(s >= 1.0 for s in speedups)
    assert speedups[-1] > speedups[0]


@pytest.fixture(scope="module")
def threshold_results():
    table = categorical_table(2000, 4, seed=9)
    attributes = [f"a{i}" for i in range(4)]
    rows = []
    for threshold in (5, 25, 100, 400):
        analyzer = CoverageAnalyzer(table, attributes, threshold=threshold)
        report = analyzer.mups()
        plan = full_coverage_plan(analyzer) if report.mups else []
        rows.append(
            (threshold, len(report.mups), len(plan), sum(c for _, c in plan))
        )
    print_table(
        "E6b: MUPs and enhancement plan vs threshold",
        ["threshold", "#MUPs", "plan combos", "rows to collect"],
        rows,
    )
    return rows


def test_uncovered_grows_with_threshold(threshold_results):
    # The number of rows needed for full coverage is monotone in the
    # threshold.  (The MUP *count* is not monotone: as the threshold
    # grows, many specific MUPs merge into fewer, more general ones.)
    rows_needed = [row[3] for row in threshold_results]
    assert rows_needed == sorted(rows_needed)
    assert rows_needed[-1] > rows_needed[0]


@pytest.fixture(scope="module")
def ordinal_results():
    rng = np.random.default_rng(11)
    schema = Schema([("x", "numeric"), ("y", "numeric")])
    data = rng.normal(size=(800, 2))
    table = Table(schema, {"x": data[:, 0], "y": data[:, 1]})
    rows = []
    for radius in (0.1, 0.3, 0.6, 1.2):
        coverage = OrdinalCoverage(table, ["x", "y"], k=5, radius=radius)
        fraction = coverage.uncovered_fraction([-3, -3], [3, 3], rng=12)
        rows.append((radius, round(fraction, 3)))
    print_table(
        "E6c: ordinal uncovered volume vs radius (k=5, box [-3,3]^2)",
        ["radius", "uncovered fraction"],
        rows,
    )
    return rows


def test_ordinal_uncovered_fraction_shrinks_with_radius(ordinal_results):
    fractions = [fraction for _, fraction in ordinal_results]
    assert fractions == sorted(fractions, reverse=True)


def test_benchmark_pattern_breaker(
    benchmark, traversal_results, threshold_results
):
    table = categorical_table(3000, 5, seed=13)
    attributes = [f"a{i}" for i in range(5)]

    def run():
        return CoverageAnalyzer(table, attributes, threshold=25).mups()

    report = benchmark(run)
    assert report.mups is not None


def test_benchmark_ordinal_queries(benchmark, ordinal_results):
    rng = np.random.default_rng(14)
    schema = Schema([("x", "numeric"), ("y", "numeric")])
    data = rng.normal(size=(2000, 2))
    table = Table(schema, {"x": data[:, 0], "y": data[:, 1]})
    coverage = OrdinalCoverage(table, ["x", "y"], k=5, radius=0.4)
    queries = rng.uniform(-2, 2, size=(500, 2))
    benchmark(lambda: coverage.covered_mask(queries))
