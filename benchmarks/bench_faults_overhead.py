"""E17 companion — inactive fault hooks must cost <1% of a catalog build.

:func:`respdi.faults.fault_point` guards every write/fsync/rename in the
catalog commit path, every parallel chunk, and every pipeline stage.
The ISSUE bound: with **no plan installed** (the production default) the
hooks together must add less than 1% to a catalog build.  Rather than
compare two noisy end-to-end builds, this measures the two factors
directly and multiplies:

* the per-call cost of an inactive ``fault_point`` (one module-global
  load plus a None check), timed over a large batch;
* the number of hook crossings one real :meth:`CatalogStore.build`
  performs, counted exactly with a recording :class:`FaultPlan`;
* the wall time of that same build, hooks inactive.

``crossings x per_call`` is the total tax, asserted under 1% of build
time.  A micro-benchmark round also lands in the pytest-benchmark table
so regressions show up in ``--benchmark-compare`` runs.

Run with timing::

    PYTHONPATH=src python -m pytest benchmarks/bench_faults_overhead.py -q
"""

import time

import pytest
from benchmarks.conftest import print_table

from respdi.catalog import CatalogStore
from respdi.datagen import LakeSpec, generate_lake
from respdi.faults import FaultPlan, active_plan, current_plan, fault_point

CALLS_PER_ROUND = 100_000


@pytest.fixture(scope="module")
def lake_tables():
    return dict(generate_lake(LakeSpec(n_distractors=6), rng=3).tables)


def _per_call_inactive_cost(rounds=5):
    assert current_plan() is None
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(CALLS_PER_ROUND):
            fault_point("bench.inactive")
        best = min(best, (time.perf_counter() - start) / CALLS_PER_ROUND)
    return best


def test_inactive_fault_point_micro(benchmark):
    """Raw per-batch cost of the inactive hook, for the comparison table."""
    assert current_plan() is None

    def batch():
        for _ in range(1000):
            fault_point("bench.inactive")

    benchmark(batch)


def test_inactive_hooks_under_one_percent_of_build(tmp_path, lake_tables):
    """E17 acceptance bound: hook tax < 1% of a real catalog build."""
    per_call = _per_call_inactive_cost()

    with active_plan(FaultPlan(record_trace=True)) as plan:
        CatalogStore.build(tmp_path / "recorded", lake_tables, rng=7)
    crossings = len(plan.trace)
    assert crossings > 0  # the build really goes through the hooks

    assert current_plan() is None
    start = time.perf_counter()
    CatalogStore.build(tmp_path / "timed", lake_tables, rng=7)
    build_seconds = time.perf_counter() - start

    tax = crossings * per_call
    share = tax / build_seconds
    print_table(
        "E17: inactive fault-hook tax on CatalogStore.build",
        ["metric", "value"],
        [
            ["per-call cost (ns)", f"{per_call * 1e9:.1f}"],
            ["hook crossings per build", str(crossings)],
            ["total hook tax (µs)", f"{tax * 1e6:.2f}"],
            ["build wall time (ms)", f"{build_seconds * 1e3:.1f}"],
            ["tax share of build", f"{share:.4%}"],
        ],
    )
    assert share < 0.01, (
        f"inactive fault hooks cost {share:.3%} of a catalog build "
        f"({crossings} crossings x {per_call * 1e9:.0f}ns)"
    )
