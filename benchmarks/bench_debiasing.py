"""E13 — Unbiased query answering and bias repair (tutorial §5).

Reproduced shapes:
* Themis-style sample debiasing: the naive AVG from a skewed sample
  misses the population value; post-stratified / raked weighted AVG
  recovers it, at the effective-sample-size cost the weights reveal;
* disparate-impact repair: group association of a repaired feature
  decreases monotonically with the repair level, and a model trained on
  fully repaired features shows (near-)parity in selection rates.
"""

import numpy as np
import pytest
from benchmarks.conftest import print_table

from respdi.cleaning import disparate_impact_repair
from respdi.datagen.population import PopulationModel, SensitiveAttribute
from respdi.debiasing import (
    WeightedQuery,
    effective_sample_size,
    post_stratification_weights,
    raking_weights,
)
from respdi.ml import LogisticRegression, demographic_parity_difference, table_to_xy
from respdi.stats import correlation_ratio


@pytest.fixture(scope="module")
def label_population():
    race = SensitiveAttribute("race", {"white": 0.8, "black": 0.2})
    return PopulationModel(
        sensitive=[race],
        n_features=2,
        label_weights=[0.0, 0.0],
        group_label_bias={("black",): -2.0},
        group_signal=0.0,
    )


@pytest.fixture(scope="module")
def debias_results(label_population):
    truth = 0.8 * 0.5 + 0.2 * float(1 / (1 + np.exp(2.0)))
    rows = []
    results = {}
    # The population's own white share is 0.8; the sweep moves strictly
    # away from it so the naive bias grows monotonically.
    for skew in (0.9, 0.95, 0.98):
        sample = label_population.sample_biased(
            10000, {("white",): skew, ("black",): 1 - skew}, rng=81
        )
        naive = sample.aggregate("y", "mean")
        weights = post_stratification_weights(
            sample, ["race"], label_population.group_distribution()
        )
        debiased = WeightedQuery(sample, weights).avg("y")
        ess = effective_sample_size(weights)
        rows.append(
            (
                skew,
                round(abs(naive - truth), 4),
                round(abs(debiased - truth), 4),
                int(ess),
            )
        )
        results[skew] = (abs(naive - truth), abs(debiased - truth))
    print_table(
        f"E13a: AVG error vs sample skew (population truth {truth:.4f})",
        ["white share", "naive |err|", "debiased |err|", "effective n (of 10000)"],
        rows,
    )
    return results


def test_debiasing_beats_naive_where_bias_dominates(debias_results):
    # Debiasing removes the *bias*; its own (small) variance remains, so
    # the win is guaranteed only where the naive bias exceeds noise.
    for naive_error, debiased_error in debias_results.values():
        assert debiased_error < 0.02
        if naive_error > 0.02:
            assert debiased_error < naive_error


def test_naive_error_grows_with_skew(debias_results):
    errors = [debias_results[s][0] for s in sorted(debias_results)]
    assert errors == sorted(errors)


@pytest.fixture(scope="module")
def repair_results():
    rng = np.random.default_rng(82)
    from respdi.table import Schema, Table

    n_a, n_b = 2000, 600
    x0 = np.concatenate([rng.normal(0, 1, n_a), rng.normal(2.5, 1, n_b)])
    x1 = np.concatenate([rng.normal(0, 1, n_a), rng.normal(-2.0, 1, n_b)])
    score = x0 - x1 + rng.normal(0, 1, n_a + n_b)
    label = (score > np.median(score)).astype(float)
    groups = ["white"] * n_a + ["black"] * n_b
    table = Table(
        Schema(
            [
                ("race", "categorical"),
                ("x0", "numeric"),
                ("x1", "numeric"),
                ("y", "numeric"),
            ]
        ),
        {"race": groups, "x0": x0, "x1": x1, "y": label},
    )
    rows = []
    outcomes = {}
    for level in (0.0, 0.5, 1.0):
        repaired = table
        for column in ("x0", "x1"):
            repaired = disparate_impact_repair(repaired, column, ["race"], level)
        association = max(
            correlation_ratio(list(repaired.column("race")), repaired.column(c))
            for c in ("x0", "x1")
        )
        X, y, race = table_to_xy(repaired, ["x0", "x1"], "y", ["race"])
        model = LogisticRegression().fit(X, y)
        dp = demographic_parity_difference(model.predict(X), list(race))
        accuracy = float((model.predict(X) == y).mean())
        rows.append(
            (level, round(association, 3), round(dp, 3), round(accuracy, 3))
        )
        outcomes[level] = (association, dp, accuracy)
    print_table(
        "E13b: disparate-impact repair level vs proxy power and model parity",
        ["repair level", "max feature~race assoc", "model dp diff", "accuracy"],
        rows,
    )
    return outcomes


def test_association_monotone_in_level(repair_results):
    associations = [repair_results[level][0] for level in (0.0, 0.5, 1.0)]
    assert associations[0] > associations[1] > associations[2]
    assert associations[2] < 0.1


def test_model_parity_improves(repair_results):
    assert repair_results[1.0][1] < repair_results[0.0][1]
    assert repair_results[1.0][1] < 0.1


def test_benchmark_raking(
    benchmark, label_population, debias_results, repair_results
):
    sample = label_population.sample_biased(
        6000, {("white",): 0.9, ("black",): 0.1}, rng=83
    )
    sample = sample.with_column(
        "bucket", "categorical",
        ["hi" if v > 0 else "lo" for v in sample.column("x0")],
    )
    marginals = {
        "race": {"white": 0.8, "black": 0.2},
        "bucket": {"hi": 0.5, "lo": 0.5},
    }
    benchmark(lambda: raking_weights(sample, marginals))


def test_benchmark_repair(benchmark, label_population):
    table = label_population.sample(3000, rng=84)
    benchmark.pedantic(
        lambda: disparate_impact_repair(table, "x0", ["race"], 1.0),
        rounds=3, iterations=1,
    )
