"""E19 — Sharded catalog (shard-parallel build vs. one store).

Reproduced shape: partitioning a catalog over 4 shards and building them
with 4 worker processes is **at least 1.5x faster** than the single-store
build on a ≥4-core host — while answering every query kind
**byte-identically** to the unsharded catalog (the scatter-gather
identity contract, locked down by ``tests/test_sharded_differential.py``).
Identity is asserted unconditionally; the speedup assertion activates
only when the host actually has the cores.

The win stacks on E16's per-table fan-out: there, parallel workers still
funnel into one writer lock and one manifest commit; here each worker
both sketches *and commits* on its own shard, so the critical section
itself is partitioned.  A ``benchmark``-fixture test makes the shard
fan-out visible to ``--benchmark-json`` (CI uploads it as
``BENCH_shards.json``).
"""

import os
import time

import numpy as np
import pytest
from benchmarks.conftest import print_table

from respdi.catalog import CatalogStore, ShardedCatalogStore
from respdi.parallel import ExecutionContext
from respdi.service import (
    ContainmentQuery,
    JoinQuery,
    KeywordQuery,
    QueryService,
    ShardedQueryService,
    UnionQuery,
)
from respdi.table import Schema, Table

SEED = 7
N_TABLES = 36
ROWS_PER_TABLE = 2500
KEY_DOMAIN = 900
NUM_SHARDS = 4
N_JOBS = 4

_SCHEMA = Schema(
    [("key", "categorical"), ("tag", "categorical"), ("f1", "numeric")]
)


def _make_table(index, rng):
    prefix = "shared" if index % 4 == 0 else f"k{index}"
    draws = rng.integers(0, KEY_DOMAIN, size=ROWS_PER_TABLE)
    tags = rng.integers(0, KEY_DOMAIN, size=ROWS_PER_TABLE)
    return Table(
        _SCHEMA,
        {
            "key": [f"{prefix}_{value}" for value in draws],
            "tag": [f"tag_{index}_{value}" for value in tags],
            "f1": rng.normal(size=ROWS_PER_TABLE),
        },
    )


@pytest.fixture(scope="module")
def lake_tables():
    rng = np.random.default_rng(13)
    return {f"t{i}": _make_table(i, rng) for i in range(N_TABLES)}


def _answers(service):
    queries = [
        KeywordQuery(text="t3", k=5),
        UnionQuery(table=_make_table(0, np.random.default_rng(99)), k=5),
        JoinQuery(values=tuple(f"shared_{v}" for v in range(40)), k=5),
        ContainmentQuery(
            values=tuple(f"shared_{v}" for v in range(25)), threshold=0.2
        ),
    ]
    return [repr(service.query(q, cached=False)) for q in queries]


def test_shard_parallel_build_faster_and_answers_identical(
    lake_tables, tmp_path
):
    assert len(lake_tables) >= 32

    start = time.perf_counter()
    plain = CatalogStore.build(tmp_path / "plain", lake_tables, rng=SEED)
    single_seconds = time.perf_counter() - start

    start = time.perf_counter()
    sharded = ShardedCatalogStore.build(
        tmp_path / "sharded",
        lake_tables,
        num_shards=NUM_SHARDS,
        rng=SEED,
        context=ExecutionContext(backend="processes", n_jobs=N_JOBS),
    )
    sharded_seconds = time.perf_counter() - start

    speedup = single_seconds / sharded_seconds
    cores = os.cpu_count() or 1
    per_shard = [len(shard) for shard in sharded.shards]
    print_table(
        "E19: catalog build, one store vs. 4 shards x 4 processes "
        f"({N_TABLES} tables x {ROWS_PER_TABLE} rows, {cores} core(s))",
        ["layout", "seconds", "speedup", "tables/shard"],
        [
            ["single store", f"{single_seconds:.3f}", "1.00x", str(N_TABLES)],
            [
                f"{NUM_SHARDS} shards",
                f"{sharded_seconds:.3f}",
                f"{speedup:.2f}x",
                "/".join(map(str, per_shard)),
            ],
        ],
    )

    # Identity first — a fast wrong catalog is worthless.  Every query
    # kind, scatter-gathered, must equal the unsharded answer exactly.
    assert sorted(sharded.names) == sorted(plain.names)
    assert sharded.verify() == []
    assert _answers(ShardedQueryService(sharded)) == _answers(
        QueryService(plain)
    )

    if cores >= N_JOBS:
        assert speedup >= 1.5, (
            f"shard-parallel build must be >=1.5x faster on a "
            f"{cores}-core host, got {speedup:.2f}x"
        )


def test_benchmark_sharded_scatter_gather_query(benchmark, lake_tables, tmp_path):
    """Steady-state scatter-gather latency (uncached), for the JSON
    artifact: one keyword query fanned over 4 warm shards and merged."""
    store = ShardedCatalogStore.build(
        tmp_path / "cat", lake_tables, num_shards=NUM_SHARDS, rng=SEED
    )
    service = ShardedQueryService(store)
    query = KeywordQuery(text="t3", k=5)
    assert service.query(query, cached=False)  # warm the pinned vector
    benchmark(lambda: service.query(query, cached=False))
