"""E21 — Multi-tenant serving: throughput under 100 clients, cache tiers.

Reproduced shape: the socket serve path sustains **>=100 concurrent
clients** with bounded tail latency (a generous p99 gate that catches
convoys, not scheduler jitter), and the two warm tiers — the in-memory
generation-keyed cache and the persistent on-disk sidecar after a cold
restart — both answer the same repeated query mix **at least 2x faster**
than recomputing, while staying byte-identical to the recomputed
answers.  The socket round-trip cost CI tracks lives in
``BENCH_serve.json`` via ``--benchmark-json``.
"""

import json
import socket
import threading
import time

import numpy as np
import pytest
from benchmarks.conftest import print_table

from respdi.catalog import CatalogStore
from respdi.service import (
    AdmissionController,
    QueryService,
    SocketQueryServer,
    handle_request,
    open_pcache,
)
from respdi.table import Schema, Table

SEED = 7
N_TABLES = 24
ROWS_PER_TABLE = 2000
KEY_DOMAIN = 300
CLIENTS = 100
REQUESTS_EACH = 5
TIER_REPEATS = 6
P99_GATE_SECONDS = 2.0

_SCHEMA = Schema([("key", "categorical"), ("f1", "numeric")])

REQUESTS = [
    {"op": "keyword", "text": "shared", "k": 5},
    {"op": "join", "values": ["shared_1", "shared_2", "k3_5"], "k": 5},
    {"op": "containment", "values": ["shared_1", "shared_2"],
     "threshold": 0.2, "k": 5},
]


def _make_table(index, rng):
    prefix = "shared" if index % 4 == 0 else f"k{index}"
    draws = rng.integers(0, KEY_DOMAIN, size=ROWS_PER_TABLE)
    return Table(
        _SCHEMA,
        {
            "key": [f"{prefix}_{value}" for value in draws],
            "f1": rng.normal(size=ROWS_PER_TABLE),
        },
    )


@pytest.fixture(scope="module")
def catalog_dir(tmp_path_factory):
    rng = np.random.default_rng(13)
    tables = {f"t{i}": _make_table(i, rng) for i in range(N_TABLES)}
    directory = tmp_path_factory.mktemp("serve-bench") / "cat"
    CatalogStore.build(directory, tables, rng=SEED)
    return directory


def _known_good(catalog_dir):
    service = QueryService(catalog_dir, cache_size=0)
    return {
        json.dumps(handle_request(service, request)["results"],
                   sort_keys=True)
        for request in REQUESTS
    }


def _percentile(ordered, fraction):
    return ordered[min(len(ordered) - 1, int(fraction * len(ordered)))]


def _client(address, tenant, latencies, responses, sheds, errors):
    """Issue REQUESTS_EACH requests, honouring ``retry_after_ms`` on shed:
    the latency recorded per request is completion time *including*
    retries — what a well-behaved caller actually experiences."""
    try:
        with socket.create_connection(address, timeout=60) as conn:
            reader = conn.makefile("r", encoding="utf-8", newline="\n")
            writer = conn.makefile("w", encoding="utf-8", newline="\n")
            for index in range(REQUESTS_EACH):
                request = dict(REQUESTS[index % len(REQUESTS)], tenant=tenant)
                line = json.dumps(request) + "\n"
                started = time.perf_counter()
                for _ in range(200):
                    writer.write(line)
                    writer.flush()
                    response = json.loads(reader.readline())
                    if response.get("error") == "overloaded":
                        sheds.append(1)
                        time.sleep(
                            min(response["retry_after_ms"], 20) / 1000.0
                        )
                        continue
                    break
                latencies.append(time.perf_counter() - started)
                responses.append(response)
    except Exception as exc:  # noqa: BLE001 - surfaced by the assert
        errors.append(exc)


def test_hundred_clients_bounded_tail_latency(catalog_dir):
    known_good = _known_good(catalog_dir)
    service = QueryService(catalog_dir, cache_size=64)
    admission = AdmissionController(max_inflight=32)
    server = SocketQueryServer(service, admission=admission)
    server.start()

    latencies, responses, sheds, errors = [], [], [], []
    threads = [
        threading.Thread(
            target=_client,
            args=(server.address, f"tenant{i % 8}", latencies, responses,
                  sheds, errors),
        )
        for i in range(CLIENTS)
    ]
    wall_start = time.perf_counter()
    try:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        assert not any(thread.is_alive() for thread in threads)
    finally:
        wall_seconds = time.perf_counter() - wall_start
        server.stop()
    assert errors == [], errors

    total = CLIENTS * REQUESTS_EACH
    assert len(responses) == total
    ok = [r for r in responses if r.get("ok")]
    for response in ok:
        assert (
            json.dumps(response["results"], sort_keys=True) in known_good
        )

    ordered = sorted(latencies)
    p50 = _percentile(ordered, 0.50)
    p99 = _percentile(ordered, 0.99)
    print_table(
        f"E21: socket serving under {CLIENTS} concurrent clients "
        f"({N_TABLES} tables x {ROWS_PER_TABLE} rows, "
        f"{REQUESTS_EACH} requests/client, inflight gate 32)",
        ["metric", "value"],
        [
            ["requests completed ok", f"{len(ok)}/{total}"],
            ["inflight sheds retried", str(len(sheds))],
            ["throughput, req/s", f"{total / wall_seconds:.0f}"],
            ["latency p50 (incl. retries), s", f"{p50:.4f}"],
            ["latency p99 (incl. retries), s", f"{p99:.4f}"],
            ["peak inflight", str(admission.stats()["peak_inflight"])],
        ],
    )

    assert len(ok) == total  # every request completed after retries
    totals = admission.stats()["totals"]
    assert totals["received"] == total + len(sheds)
    assert admission.stats()["peak_inflight"] <= 32
    assert p99 < P99_GATE_SECONDS, f"p99 {p99:.3f}s breaches the gate"


def _timed_pass(service, pcache=None, repeats=TIER_REPEATS):
    service.snapshot()  # pay the one-time index load outside the clock
    rendered = []
    start = time.perf_counter()
    for _ in range(repeats):
        for request in REQUESTS:
            response = handle_request(service, request, pcache=pcache)
            rendered.append(
                json.dumps(response["results"], sort_keys=True)
            )
    return rendered, time.perf_counter() - start


def test_warm_tiers_beat_cold_and_stay_byte_identical(catalog_dir, tmp_path):
    # Cold: every answer recomputed from the index.
    cold_results, cold_seconds = _timed_pass(
        QueryService(catalog_dir, cache_size=0)
    )

    # Memory-warm: prime the generation-keyed cache, then measure hits.
    memory_service = QueryService(catalog_dir, cache_size=64)
    _timed_pass(memory_service, repeats=1)
    memory_results, memory_seconds = _timed_pass(memory_service)

    # Persistent-warm: populate the sidecar, then "restart" — fresh
    # service and pcache objects over the same disk, zero recomputes.
    sidecar = tmp_path / "sidecar"
    _timed_pass(
        QueryService(catalog_dir, cache_size=0),
        pcache=open_pcache(catalog_dir, directory=sidecar),
        repeats=1,
    )
    warm_pcache = open_pcache(catalog_dir, directory=sidecar)
    pcache_results, pcache_seconds = _timed_pass(
        QueryService(catalog_dir, cache_size=0), pcache=warm_pcache
    )

    queries = TIER_REPEATS * len(REQUESTS)
    rows = [
        ["cold (recompute all)", cold_seconds, 1.0],
        ["memory-warm (cache hits)", memory_seconds,
         cold_seconds / memory_seconds],
        ["persistent-warm (sidecar after restart)", pcache_seconds,
         cold_seconds / pcache_seconds],
    ]
    print_table(
        f"E21b: cache tiers over the same request mix ({queries} requests)",
        ["tier", "seconds", "speedup"],
        [[name, f"{seconds:.3f}", f"{speedup:.1f}x"]
         for name, seconds, speedup in rows],
    )

    assert cold_results == memory_results == pcache_results, (
        "warm tiers must be byte-identical to recomputed answers"
    )
    stats = warm_pcache.stats()
    assert stats["stores"] == 0 and stats["misses"] == 0  # true warm start
    assert stats["hits"] == queries
    assert cold_seconds / memory_seconds >= 2.0
    assert cold_seconds / pcache_seconds >= 2.0


@pytest.fixture(scope="module")
def warm_server(catalog_dir):
    service = QueryService(catalog_dir, cache_size=64)
    server = SocketQueryServer(service, admission=AdmissionController())
    server.start()
    conn = socket.create_connection(server.address, timeout=30)
    reader = conn.makefile("r", encoding="utf-8", newline="\n")
    writer = conn.makefile("w", encoding="utf-8", newline="\n")
    yield reader, writer
    conn.close()
    server.stop()


def test_benchmark_socket_roundtrip_warm(benchmark, warm_server):
    """The per-request serve overhead CI tracks in ``BENCH_serve.json``:
    one JSON-lines round-trip answered from the warm result cache."""
    reader, writer = warm_server
    line = json.dumps(REQUESTS[0]) + "\n"

    def roundtrip():
        writer.write(line)
        writer.flush()
        return json.loads(reader.readline())

    response = benchmark(roundtrip)
    assert response["ok"] and response["results"]
