"""E7 — Discovery sketches (Zhu'16 LSH Ensemble, Fernandez'19 Lazo,
Santos'21 correlation sketches).

Reproduced shapes:
* LSH Ensemble recovers planted unionable partners above the containment
  threshold with high precision/recall against exact containment;
* Lazo containment estimates track the planted ground truth;
* correlation-sketch estimation error shrinks as sketch size grows, and
  the ranking of planted join-correlation partners is preserved.
"""

import numpy as np
import pytest
from benchmarks.conftest import print_table

from respdi.datagen import LakeSpec, generate_lake
from respdi.discovery import (
    CorrelationSketch,
    DataLakeIndex,
    LazoSketch,
    LSHEnsemble,
    MinHasher,
)


@pytest.fixture(scope="module")
def lake():
    return generate_lake(LakeSpec(n_distractors=60), rng=21)


def exact_containment(query_set, candidate_set):
    return len(query_set & candidate_set) / len(query_set)


@pytest.fixture(scope="module")
def ensemble_results(lake):
    query_table = lake.tables[lake.query_table]
    query_values = set(query_table.unique(lake.query_column))
    ensemble = LSHEnsemble(num_hashes=128, num_partitions=4, rng=1)
    truth = {}
    for name, table in lake.tables.items():
        for column in table.schema.categorical_names:
            values = set(table.unique(column))
            if not values:
                continue
            key = (name, column)
            ensemble.index(key, values)
            truth[key] = exact_containment(query_values, values)
    ensemble.freeze()
    rows = []
    for threshold in (0.8, 0.6, 0.4, 0.2):
        hits = {key for key, _ in ensemble.query(query_values, threshold)}
        relevant = {key for key, c in truth.items() if c >= threshold}
        true_positives = len(hits & relevant)
        precision = true_positives / len(hits) if hits else 1.0
        recall = true_positives / len(relevant) if relevant else 1.0
        rows.append(
            (threshold, len(relevant), len(hits),
             round(precision, 3), round(recall, 3))
        )
    print_table(
        "E7a: LSH Ensemble precision/recall vs exact containment",
        ["threshold", "#relevant", "#returned", "precision", "recall"],
        rows,
    )
    return rows


def test_ensemble_precision_recall(ensemble_results):
    for _, _, _, precision, recall in ensemble_results:
        assert precision >= 0.7
        assert recall >= 0.7


@pytest.fixture(scope="module")
def lazo_results(lake):
    query_table = lake.tables[lake.query_table]
    query_values = query_table.unique(lake.query_column)
    hasher = MinHasher(256, rng=2)
    query_sketch = LazoSketch.build(query_values, hasher)
    rows = []
    for name, true_containment in sorted(lake.unionable_truth.items()):
        table = lake.tables[name]
        column = [c for c in table.column_names if c.endswith("c0")][0]
        sketch = LazoSketch.build(table.unique(column), hasher)
        estimate = query_sketch.estimate(sketch)
        rows.append(
            (name, true_containment,
             round(estimate.containment_of_query, 3),
             round(abs(estimate.containment_of_query - true_containment), 3))
        )
    print_table(
        "E7b: Lazo containment estimates vs planted truth",
        ["table", "true", "estimated", "abs error"],
        rows,
    )
    return rows


def test_lazo_estimates_accurate(lazo_results):
    for _, _, _, error in lazo_results:
        assert error < 0.12


@pytest.fixture(scope="module")
def correlation_results():
    rng = np.random.default_rng(3)
    n = 2000
    keys = [f"k{i}" for i in range(n)]
    x = rng.normal(size=n)
    rows = []
    for size in (16, 32, 64, 128, 256):
        errors = []
        for rho in (0.9, 0.6, 0.3, 0.0):
            y = rho * x + np.sqrt(1 - rho**2) * rng.normal(size=n)
            a = CorrelationSketch.build(keys, x, size=size)
            b = CorrelationSketch.build(keys, y, size=size)
            errors.append(abs(a.estimate_pearson(b) - rho))
        rows.append((size, round(float(np.mean(errors)), 4)))
    print_table(
        "E7c: correlation-sketch mean |error| vs sketch size",
        ["sketch size", "mean abs error"],
        rows,
    )
    return rows


def test_correlation_error_shrinks_with_size(correlation_results):
    errors = [error for _, error in correlation_results]
    assert errors[-1] < errors[0]
    assert errors[-1] < 0.1


def test_feature_ranking_preserved(lake):
    index = DataLakeIndex(rng=4, sketch_size=96)
    for name, table in lake.tables.items():
        index.register(name, table)
    query = lake.tables[lake.query_table]
    hits = index.discover_features(query, "key", "target", k=10)
    estimated = {
        h.table_name: abs(h.estimated_target_correlation)
        for h in hits
        if h.table_name.startswith("joinable")
    }
    ranked = sorted(estimated, key=estimated.get, reverse=True)
    truth_ranked = sorted(
        lake.join_truth, key=lambda n: abs(lake.join_truth[n]), reverse=True
    )
    assert ranked[0] == truth_ranked[0]


@pytest.fixture(scope="module")
def partition_ablation(lake):
    """DESIGN.md §3 ablation 4: LSH Ensemble partition count vs recall at
    a fixed signature budget."""
    query_table = lake.tables[lake.query_table]
    query_values = set(query_table.unique(lake.query_column))
    threshold = 0.4
    rows = []
    for partitions in (1, 2, 4, 8):
        ensemble = LSHEnsemble(
            num_hashes=128, num_partitions=partitions, rng=7
        )
        truth = {}
        for name, table in lake.tables.items():
            for column in table.schema.categorical_names:
                values = set(table.unique(column))
                if not values:
                    continue
                ensemble.index((name, column), values)
                truth[(name, column)] = exact_containment(query_values, values)
        ensemble.freeze()
        hits = {key for key, _ in ensemble.query(query_values, threshold)}
        relevant = {key for key, c in truth.items() if c >= threshold}
        recall = len(hits & relevant) / len(relevant) if relevant else 1.0
        precision = len(hits & relevant) / len(hits) if hits else 1.0
        rows.append((partitions, round(precision, 3), round(recall, 3)))
    print_table(
        "E7d (ablation): LSH Ensemble partitions vs precision/recall @0.4",
        ["partitions", "precision", "recall"],
        rows,
    )
    return rows


def test_partitioning_does_not_hurt_recall(partition_ablation):
    recalls = [recall for _, _, recall in partition_ablation]
    # More partitions → tighter per-partition Jaccard thresholds → recall
    # at least as good as the single-partition ensemble.
    assert recalls[-1] >= recalls[0] - 1e-9
    assert all(recall >= 0.7 for recall in recalls)


@pytest.fixture(scope="module")
def navigation_results():
    """E7e: navigation cost vs flat scan as the lake grows (Nargesian'20
    organization shape: touched signatures grow ~logarithmically)."""
    from respdi.discovery import LakeOrganization
    from respdi.table import ColumnType, Schema, Table

    rng = np.random.default_rng(9)
    rows = []
    results = []
    for n_topics in (4, 8, 16):
        org = LakeOrganization()
        domains = {}
        for topic in range(n_topics):
            vocab = [f"t{topic}_v{i}" for i in range(300)]
            for k in range(4):
                domain = list(rng.choice(vocab, size=50, replace=False))
                name = f"topic{topic}_table{k}"
                org.register(
                    name,
                    Table(
                        Schema([("c", ColumnType.CATEGORICAL)]), {"c": domain}
                    ),
                )
                domains[name] = set(domain)
        org.build()
        target = f"topic{n_topics // 2}_table1"
        query = sorted(domains[target])[:25]
        nav = org.navigate(query)
        _, scanned = org.linear_scan(query)
        rows.append(
            (n_topics * 4, nav.nodes_touched, scanned,
             "yes" if nav.found == target else "NO")
        )
        results.append((n_topics * 4, nav.nodes_touched, scanned, nav.found == target))
    print_table(
        "E7e: navigation vs flat scan (signatures touched)",
        ["tables", "navigation", "flat scan", "found target"],
        rows,
    )
    return results


def test_navigation_beats_flat_scan_at_scale(navigation_results):
    for n_tables, touched, scanned, found in navigation_results:
        assert found
        if n_tables >= 16:
            assert touched < scanned
    # Navigation cost grows much slower than lake size.
    small = navigation_results[0]
    large = navigation_results[-1]
    assert large[1] / small[1] < (large[0] / small[0])


def test_benchmark_lake_registration(benchmark, lake):
    def register_all():
        index = DataLakeIndex(rng=5, sketch_size=64)
        for name, table in lake.tables.items():
            index.register(name, table)
        return index

    benchmark.pedantic(register_all, rounds=2, iterations=1)


def test_benchmark_ensemble_query(
    benchmark, lake, ensemble_results, lazo_results, correlation_results,
    partition_ablation, navigation_results,
):
    query_table = lake.tables[lake.query_table]
    query_values = set(query_table.unique(lake.query_column))
    ensemble = LSHEnsemble(num_hashes=128, num_partitions=4, rng=6)
    for name, table in lake.tables.items():
        for column in table.schema.categorical_names:
            values = table.unique(column)
            if values:
                ensemble.index((name, column), values)
    ensemble.freeze()
    benchmark(lambda: ensemble.query(query_values, 0.5))
