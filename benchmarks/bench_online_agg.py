"""E5 — Online aggregation (ripple join Luo'02, wander join Li'16).

Reproduced shapes: both estimators' relative error shrinks as tuples /
walks are consumed; ripple is exact at exhaustion; wander join's
HT-corrected COUNT estimate is unbiased (mean over seeds near truth).
"""

import numpy as np
import pytest
from benchmarks.conftest import print_table

from respdi.sampling import ChainJoinSpec, RippleJoin, WanderJoin, full_join
from respdi.table import Schema, Table


def zipf_table(prefix, n, seed):
    rng = np.random.default_rng(seed)
    keys = [f"k{i}" for i in range(20)]
    schema = Schema([("k", "categorical"), (prefix, "numeric")])
    rows = [
        (keys[min(int(rng.zipf(1.5)) - 1, 19)], float(rng.normal(5, 2)))
        for _ in range(n)
    ]
    return Table.from_rows(schema, rows)


@pytest.fixture(scope="module")
def setting():
    left = zipf_table("a", 600, 1)
    right = zipf_table("b", 600, 2)
    joined = full_join(left, right, ["k"])
    return left, right, len(joined), joined.aggregate("b", "sum")


@pytest.fixture(scope="module")
def ripple_trajectory(setting):
    left, right, true_count, true_sum = setting
    ripple = RippleJoin(left, right, "k", expression=lambda a, b: b["b"], rng=3)
    rows = []
    for estimate in ripple.run(record_every=200):
        count_err = abs(estimate.count_estimate - true_count) / true_count
        sum_err = abs(estimate.sum_estimate - true_sum) / abs(true_sum)
        rows.append(
            (estimate.tuples_consumed, f"{count_err:.4f}", f"{sum_err:.4f}")
        )
    print_table(
        "E5a: ripple join relative error vs tuples consumed",
        ["tuples", "COUNT rel.err", "SUM rel.err"],
        rows,
    )
    return rows


def test_ripple_error_shrinks_to_zero(ripple_trajectory):
    final_count_error = float(ripple_trajectory[-1][1])
    assert final_count_error == pytest.approx(0.0, abs=1e-9)
    errors = [float(row[1]) for row in ripple_trajectory]
    assert errors[-1] <= errors[0]


@pytest.fixture(scope="module")
def wander_trajectory(setting):
    left, right, true_count, true_sum = setting
    spec = ChainJoinSpec([left, right], [("k", "k")])
    wander = WanderJoin(spec, expression=lambda rows: rows[1]["b"], rng=4)
    rows = []
    for estimate in wander.run(8000, record_every=2000):
        count_err = abs(estimate.count_estimate - true_count) / true_count
        rows.append((estimate.walks, f"{count_err:.4f}",
                     f"{estimate.success_rate:.3f}"))
    print_table(
        "E5b: wander join relative COUNT error vs walks",
        ["walks", "COUNT rel.err", "success rate"],
        rows,
    )
    return rows


def test_wander_error_small_at_the_end(wander_trajectory):
    assert float(wander_trajectory[-1][1]) < 0.15


def test_wander_count_unbiased_over_seeds(setting):
    left, right, true_count, _ = setting
    spec = ChainJoinSpec([left, right], [("k", "k")])
    estimates = []
    for seed in range(8):
        wander = WanderJoin(spec, rng=seed)
        estimates.append(wander.run(3000)[-1].count_estimate)
    assert float(np.mean(estimates)) == pytest.approx(true_count, rel=0.05)


def test_benchmark_ripple_steps(benchmark, setting, ripple_trajectory):
    left, right, _, _ = setting

    def run():
        RippleJoin(left, right, "k", rng=5).run(steps=300)

    benchmark(run)


def test_benchmark_wander_walks(benchmark, setting, wander_trajectory):
    left, right, _, _ = setting
    spec = ChainJoinSpec([left, right], [("k", "k")])

    def run():
        WanderJoin(spec, rng=6).run(1000)

    benchmark(run)
