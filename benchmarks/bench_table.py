"""E23 — Vectorized table core: value hashing, catalog build, zero-copy.

Before/after on the register/refresh hot paths, against embedded
*seed-reference* implementations (the scalar per-value loops the
vectorized core replaced, proven byte-identical by
``tests/test_table_hashing.py``):

* **value hashing ≥5x** on the steady-state workload — a lake re-hashes
  the same values constantly (refresh cycles over unchanged columns,
  shared key domains across tables), which is exactly what the
  type-partitioned digest memo accelerates; the cold first-contact pass
  is reported alongside honestly (it is roughly at parity: blake2b
  itself dominates and is already C);
* **catalog build ≥2x at flat peak memory, 10x rows** — a cold
  ``CatalogStore.build`` over a synthetic lake with 10x the rows of the
  E15 lake (80k rows/table), with the sketch kernels monkeypatched back
  to the seed scalar paths for the "before" build;
* **zero-copy slicing** — window/head slices share buffers, so slice
  memory is the viewed extent, not a copy of it.

CI tracks the headline timing in ``BENCH_table.json``.
"""

import hashlib
import time
import tracemalloc

import numpy as np
import pytest
from benchmarks.conftest import print_table

from respdi.catalog import CatalogStore
from respdi.discovery import correlation_sketches as cs
from respdi.discovery import minhash as mh
from respdi.discovery.minhash import MinHashSignature
from respdi.table import Schema, Table
from respdi.table.hashing import clear_hash_caches, stable_hash32_list

SEED = 7
N_TABLES = 6
ROWS_PER_TABLE = 80_000  # 10x the E15 lake's 8000 rows/table
KEY_DOMAIN = 600

_SCHEMA = Schema([("key", "categorical"), ("f1", "numeric"), ("f2", "numeric")])


def _make_table(index, rng):
    # Half the tables draw keys from a shared domain — the realistic
    # lake shape (overlapping entities) and the memo cache's food.
    prefix = "shared" if index % 2 == 0 else f"k{index}"
    draws = rng.integers(0, KEY_DOMAIN, size=ROWS_PER_TABLE)
    return Table(
        _SCHEMA,
        {
            "key": [f"{prefix}_{value}" for value in draws],
            "f1": rng.normal(size=ROWS_PER_TABLE),
            "f2": rng.normal(size=ROWS_PER_TABLE),
        },
    )


@pytest.fixture(scope="module")
def lake_tables():
    rng = np.random.default_rng(13)
    return {f"t{i}": _make_table(i, rng) for i in range(N_TABLES)}


# -- seed-reference implementations (what the vectorized core replaced) -------


def _seed_stable_hash32(value):
    digest = hashlib.blake2b(repr(value).encode("utf-8"), digest_size=4).digest()
    return int.from_bytes(digest, "big")


def _seed_signature(self, values):
    distinct = set(values)
    hashes = np.array(
        [_seed_stable_hash32(v) for v in distinct], dtype=np.uint64
    )
    transformed = (
        self._a[:, None] * hashes[None, :] + self._b[:, None]
    ) % mh._MERSENNE_PRIME
    return MinHashSignature(
        transformed.min(axis=1),
        cardinality=len(distinct),
        hasher_id=self.hasher_id,
    )


def _seed_key_hash(value, seed):
    digest = hashlib.blake2b(
        repr(value).encode("utf-8"), digest_size=8, salt=seed.to_bytes(8, "big")
    ).digest()
    return int.from_bytes(digest, "big")


def _seed_sketch_build(cls, keys, values, size=64, seed=17):
    sums, counts = {}, {}
    for key, value in zip(keys, values):
        if key is None:
            continue
        value = float(value)
        if np.isnan(value):
            continue
        sums[key] = sums.get(key, 0.0) + value
        counts[key] = counts.get(key, 0) + 1
    hashed = sorted(
        (_seed_key_hash(key, seed), key, sums[key] / counts[key]) for key in sums
    )
    return cls(entries=tuple(hashed[:size]), num_keys=len(sums), seed=seed)


def _seed_digest_categorical(digest, values, chunk=4096):
    digest.update(repr(list(values)).encode())


def _patch_seed_kernels(monkeypatch):
    """Route the catalog's sketch kernels back through the seed loops."""
    from respdi.catalog import store as store_module
    from respdi.table import hashing as hashing_module

    monkeypatch.setattr(mh.MinHasher, "signature", _seed_signature)
    monkeypatch.setattr(
        cs.CorrelationSketch, "build", classmethod(_seed_sketch_build)
    )
    monkeypatch.setattr(
        store_module, "digest_categorical", _seed_digest_categorical
    )
    monkeypatch.setattr(
        hashing_module, "digest_categorical", _seed_digest_categorical
    )


# -- value hashing ------------------------------------------------------------


def _hash_workload():
    # The refresh shape: many rows, bounded distinct domain, re-seen
    # across cycles/tables.
    rng = np.random.default_rng(3)
    pool = [f"entity-{i}" for i in range(5000)]
    return [pool[i] for i in rng.integers(0, len(pool), size=200_000)]


def test_benchmark_value_hashing_warm_at_least_5x(benchmark):
    """The headline kernel CI tracks in ``BENCH_table.json``: batched
    value hashing on the steady-state workload vs the seed scalar loop."""
    data = _hash_workload()

    start = time.perf_counter()
    reference = [_seed_stable_hash32(v) for v in data]
    seed_seconds = time.perf_counter() - start

    clear_hash_caches()
    cold_start = time.perf_counter()
    cold = stable_hash32_list(data)
    cold_seconds = time.perf_counter() - cold_start

    warm = benchmark(stable_hash32_list, data)
    warm_seconds = benchmark.stats.stats.median

    assert cold == warm == reference
    speedup_warm = seed_seconds / warm_seconds
    speedup_cold = seed_seconds / cold_seconds
    print_table(
        "E23a: value hashing, 200k values / 5k distinct",
        ["path", "seconds", "vs seed"],
        [
            ["seed scalar loop", f"{seed_seconds:.3f}", "1.0x"],
            ["vectorized cold", f"{cold_seconds:.3f}", f"{speedup_cold:.1f}x"],
            ["vectorized warm", f"{warm_seconds:.3f}", f"{speedup_warm:.1f}x"],
        ],
    )
    assert speedup_warm >= 5.0, f"warm hashing speedup {speedup_warm:.2f}x < 5x"


# -- catalog build ------------------------------------------------------------


def _timed_build(directory, tables):
    start = time.perf_counter()
    CatalogStore.build(directory, tables, rng=SEED)
    return time.perf_counter() - start


def _peak_build_memory(directory, tables):
    tracemalloc.start()
    CatalogStore.build(directory, tables, rng=SEED)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak


def test_catalog_build_2x_faster_flat_memory(lake_tables, tmp_path, monkeypatch):
    clear_hash_caches()
    with monkeypatch.context() as patched:
        _patch_seed_kernels(patched)
        seed_seconds = _timed_build(tmp_path / "seed-cat", lake_tables)
        seed_peak = _peak_build_memory(tmp_path / "seed-mem", lake_tables)

    clear_hash_caches()
    new_seconds = _timed_build(tmp_path / "new-cat", lake_tables)
    new_peak = _peak_build_memory(tmp_path / "new-mem", lake_tables)

    speedup = seed_seconds / new_seconds
    memory_ratio = new_peak / seed_peak
    print_table(
        f"E23b: cold catalog build, {N_TABLES} tables x {ROWS_PER_TABLE} rows "
        "(10x E15)",
        ["path", "seconds", "peak MiB"],
        [
            ["seed scalar kernels", f"{seed_seconds:.2f}",
             f"{seed_peak / 2**20:.1f}"],
            ["vectorized core", f"{new_seconds:.2f}",
             f"{new_peak / 2**20:.1f}"],
            ["ratio", f"{speedup:.2f}x faster", f"{memory_ratio:.2f}x"],
        ],
    )
    assert speedup >= 2.0, f"catalog build speedup {speedup:.2f}x < 2x"
    assert memory_ratio <= 1.10, (
        f"peak memory grew {memory_ratio:.2f}x (flat-memory gate is 1.10x)"
    )

    # Same bytes on disk modulo the manifest timestamp: every entry's
    # fingerprint (content hash) is identical between the two builds.
    seed_store = CatalogStore.open(tmp_path / "seed-cat")
    new_store = CatalogStore.open(tmp_path / "new-cat")
    for name in lake_tables:
        assert (
            seed_store.meta(name)["fingerprint"]
            == new_store.meta(name)["fingerprint"]
        )


# -- zero-copy slicing --------------------------------------------------------


def test_zero_copy_slicing_memory(lake_tables):
    table = next(iter(lake_tables.values()))
    window = table.take(range(1000, 9000))
    for name in table.column_names:
        assert np.shares_memory(window.column(name), table.column(name))
    full = sum(table.memory_usage().values())
    sliced = sum(window.memory_usage().values())
    print_table(
        "E23c: zero-copy window (8k of 80k rows)",
        ["table", "shallow bytes"],
        [
            ["full table", f"{full:,}"],
            ["window view", f"{sliced:,}"],
        ],
    )
    assert sliced == full // 10
