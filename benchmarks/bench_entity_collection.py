"""E10 — Distribution-aware crowdsourced entity collection (Fan'19).

Reproduced shape: adaptive worker selection drives
``KL(target || collected)`` below both uniform-random worker selection
and static best-single-worker selection, with the advantage growing with
worker specialization (smaller Dirichlet concentration).
"""

import numpy as np
import pytest
from benchmarks.conftest import print_table

from respdi.entitycollection import (
    AdaptiveSelection,
    EntityCollector,
    RandomSelection,
    StaticSelection,
    make_worker_pool,
)

CATEGORIES = list("abcde")
ROUNDS = 400
SEEDS = (1, 2, 3)


def mean_final_kl(workers, target, strategy_factory):
    values = []
    for seed in SEEDS:
        collector = EntityCollector(workers, target, strategy_factory())
        values.append(collector.run(ROUNDS, rng=seed).final_kl)
    return float(np.mean(values))


@pytest.fixture(scope="module")
def specialization_sweep():
    target = {c: 0.2 for c in CATEGORIES}
    rows = []
    for concentration in (2.0, 0.5, 0.2):
        workers = make_worker_pool(
            CATEGORIES, n_workers=12, concentration=concentration, rng=51
        )
        adaptive = mean_final_kl(workers, target, AdaptiveSelection)
        random = mean_final_kl(workers, target, RandomSelection)
        static = mean_final_kl(workers, target, StaticSelection)
        rows.append(
            (
                concentration,
                round(adaptive, 4),
                round(static, 4),
                round(random, 4),
            )
        )
    print_table(
        "E10: final KL(target || collected) after 400 rounds",
        ["worker concentration", "adaptive", "static", "random"],
        rows,
    )
    return rows


def test_adaptive_always_best(specialization_sweep):
    for _, adaptive, static, random in specialization_sweep:
        assert adaptive <= static + 1e-6
        assert adaptive <= random + 1e-6


def test_advantage_grows_with_specialization(specialization_sweep):
    gaps = [random - adaptive for _, adaptive, _, random in specialization_sweep]
    assert gaps[-1] > gaps[0]


@pytest.fixture(scope="module")
def trajectory():
    workers = make_worker_pool(CATEGORIES, 12, concentration=0.3, rng=52)
    target = {c: 0.2 for c in CATEGORIES}
    collector = EntityCollector(workers, target, AdaptiveSelection())
    result = collector.run(ROUNDS, rng=53)
    rows = [
        (checkpoint + 1, round(result.kl_trajectory[checkpoint], 4))
        for checkpoint in range(49, ROUNDS, 100)
    ]
    print_table("E10b: adaptive KL trajectory", ["round", "KL"], rows)
    return result


def test_kl_decreases_over_time(trajectory):
    assert trajectory.kl_trajectory[-1] < trajectory.kl_trajectory[20]


def test_benchmark_adaptive_campaign(
    benchmark, specialization_sweep, trajectory
):
    workers = make_worker_pool(CATEGORIES, 12, concentration=0.3, rng=54)
    target = {c: 0.2 for c in CATEGORIES}

    def run():
        return EntityCollector(workers, target, AdaptiveSelection()).run(
            200, rng=55
        )

    benchmark.pedantic(run, rounds=3, iterations=1)
