"""Experiment benchmarks (E1..E12); see DESIGN.md §4 for the index."""
