"""E22 — Matcher strength views: coverage ladder and FuzzyGain (§2+§5).

Reproduced shapes:
* entity coverage climbs **strictly** up the strength ladder
  (Exact < Normalized < Fuzzy) on a registry corrupted by the
  name-variant noise model — each strength recovers a damage class the
  weaker one is blind to, and link sets stay nested throughout;
* precision is perfect at the bottom of the ladder and only the fuzzy
  step pays any of it (the coverage/precision dial a tenant turns when
  picking ``match_strength``);
* per-group **FuzzyGain** localizes the noise: a group whose records are
  transcribed cleanly gains nothing from the fuzzy step, while the
  group corrupted at high intensity gains most of its coverage there —
  the harness surfaces *whose* records needed the stronger matcher;
* the fuzzy threshold trades the gain against precision.
"""

import pytest
from benchmarks.conftest import print_table

from respdi.datagen.corruption import NameNoiseModel
from respdi.datagen.duplicates import generate_gold_registry
from respdi.linkage import build_view, evaluate_strengths


def make_registry(rng, group_intensity=None, n_entities=250):
    return generate_gold_registry(
        n_entities,
        duplicates_per_entity=2,
        noise=NameNoiseModel(),
        group_intensity=group_intensity,
        rng=rng,
    )


@pytest.fixture(scope="module")
def strength_ladder():
    reg = make_registry(rng=201)
    report = evaluate_strengths(
        reg.table,
        "_entity",
        ["name", "zip"],
        group_columns=["group"],
        threshold=0.85,
    )
    rows = [
        (
            strength,
            report.views[strength].links.num_links,
            report.views[strength].links.num_clusters,
            round(report.views[strength].quality.precision, 3),
            round(report.views[strength].quality.recall, 3),
            round(report.views[strength].entity_coverage, 3),
        )
        for strength in report.strengths
    ]
    print_table(
        "E22a: matcher strength ladder (250 entities, 2 dups each, "
        "keys=name+zip)",
        ["strength", "links", "clusters", "precision", "recall", "coverage"],
        rows,
    )
    return report


def test_coverage_strictly_monotone_up_the_ladder(strength_ladder):
    coverages = [
        strength_ladder.views[s].entity_coverage
        for s in strength_ladder.strengths
    ]
    assert coverages[0] < coverages[1] < coverages[2]
    assert strength_ladder.nested


def test_only_the_fuzzy_step_pays_precision(strength_ladder):
    precisions = [
        strength_ladder.views[s].quality.precision
        for s in strength_ladder.strengths
    ]
    assert precisions[0] == precisions[1] == 1.0
    assert precisions[2] <= 1.0
    assert precisions[2] > 0.8  # and not much of it at threshold 0.85


def test_recall_never_drops_with_strength(strength_ladder):
    recalls = [
        strength_ladder.views[s].quality.recall
        for s in strength_ladder.strengths
    ]
    assert recalls == sorted(recalls)
    assert recalls[-1] > recalls[0] + 0.3


@pytest.fixture(scope="module")
def group_gain():
    # Green records are transcribed cleanly (intensity 0: duplicates are
    # byte-identical); blue carries heavy name noise.  FuzzyGain should
    # attribute the recovered coverage entirely to blue.
    reg = make_registry(rng=102, group_intensity={"blue": 1.5, "green": 0.0})
    report = evaluate_strengths(
        reg.table, "_entity", ["name"], group_columns=["group"], threshold=0.85
    )
    gains = report.group_coverage_gains["fuzzy"]
    rows = [
        (
            "|".join(group),
            round(report.views["exact"].group_coverage.get(group, 0.0), 3),
            round(report.views["normalized"].group_coverage.get(group, 0.0), 3),
            round(report.views["fuzzy"].group_coverage.get(group, 0.0), 3),
            round(gains.get(group, 0.0), 3),
        )
        for group in sorted(gains, key=repr)
    ]
    print_table(
        "E22b: per-group coverage and FuzzyGain "
        "(blue corrupted at 1.5x, green clean)",
        ["group", "exact", "normalized", "fuzzy", "fuzzy gain"],
        rows,
    )
    return report


def test_fuzzygain_localizes_the_noisy_group(group_gain):
    gains = group_gain.group_coverage_gains["fuzzy"]
    assert gains[("green",)] == pytest.approx(0.0, abs=0.05)
    assert gains[("blue",)] > 0.3
    # The clean group is fully covered by the cheapest view already.
    assert group_gain.views["exact"].group_coverage[("green",)] == 1.0


@pytest.fixture(scope="module")
def threshold_dial():
    reg = make_registry(rng=103)
    rows = []
    reports = {}
    for threshold in (0.95, 0.9, 0.85):
        report = evaluate_strengths(
            reg.table,
            "_entity",
            ["name"],
            group_columns=["group"],
            strengths=("normalized", "fuzzy"),
            threshold=threshold,
        )
        reports[threshold] = report
        rows.append(
            (
                threshold,
                round(report.views["fuzzy"].quality.precision, 3),
                round(report.views["fuzzy"].entity_coverage, 3),
                round(report.fuzzy_gain, 3),
            )
        )
    print_table(
        "E22c: fuzzy threshold vs precision / coverage / FuzzyGain",
        ["threshold", "precision", "coverage", "fuzzy gain"],
        rows,
    )
    return reports


def test_lower_threshold_buys_gain_with_precision(threshold_dial):
    strict, lenient = threshold_dial[0.95], threshold_dial[0.85]
    assert lenient.fuzzy_gain >= strict.fuzzy_gain
    assert (
        lenient.views["fuzzy"].quality.precision
        <= strict.views["fuzzy"].quality.precision + 1e-9
    )


def test_benchmark_exact_view(benchmark):
    reg = make_registry(rng=104)
    view = build_view("exact", ["name"])
    benchmark(lambda: view.link(reg.table))


def test_benchmark_normalized_view(benchmark):
    reg = make_registry(rng=104)
    view = build_view("normalized", ["name"])
    benchmark(lambda: view.link(reg.table))


def test_benchmark_fuzzy_view(benchmark):
    reg = make_registry(rng=104, n_entities=120)
    view = build_view("fuzzy", ["name"], threshold=0.9)
    benchmark.pedantic(lambda: view.link(reg.table), rounds=3, iterations=1)


def test_benchmark_full_harness(benchmark):
    reg = make_registry(rng=105, n_entities=80)
    benchmark.pedantic(
        lambda: evaluate_strengths(
            reg.table, "_entity", ["name"], group_columns=["group"],
            threshold=0.9,
        ),
        rounds=3,
        iterations=1,
    )
