"""E1 — Distribution tailoring with known distributions (Nargesian'21).

Reproduced shape: RatioColl's expected cost is a small multiple of the
information-theoretic minimum and **beats non-adaptive baselines by a
growing factor as the minority gets rarer** (the paper's cost-vs-skew
figures).  We sweep the minority fraction and compare RatioColl against
RandomColl and RoundRobin, then benchmark one full RatioColl run.
"""

import numpy as np
import pytest
from benchmarks.conftest import print_table

from respdi.datagen import make_source_tables, skewed_group_distributions
from respdi.datagen.population import default_health_population
from respdi.tailoring import (
    CountSpec,
    RandomPolicy,
    RatioCollPolicy,
    RoundRobinPolicy,
    TableSource,
    tailor,
)

SEEDS = (1, 2, 3)
COUNT_PER_GROUP = 30


def build_setting(minority_fraction):
    population = default_health_population(minority_fraction=minority_fraction)
    # One clinic predominantly serves one minority community; the other
    # minority group is only available at its (falling) population rate —
    # the mixed regime where adaptive selection's advantage grows with
    # rarity.  Concentration is high enough that no source's support
    # loses a group entirely.
    distributions = skewed_group_distributions(
        population.group_distribution(),
        n_sources=5,
        concentration=40.0,
        specialized={0: ("F", "black")},
        specialization_mass=0.5,
        rng=10,
    )
    tables = make_source_tables(population, distributions, 8000, rng=11)
    sources = [TableSource(f"s{i}", t) for i, t in enumerate(tables)]
    spec = CountSpec(
        ("gender", "race"), {g: COUNT_PER_GROUP for g in population.groups}
    )
    return sources, spec


def mean_cost(sources, spec, policy_factory):
    costs = []
    for seed in SEEDS:
        result = tailor(
            sources, spec, policy_factory(), rng=seed, max_steps=120_000
        )
        assert result.satisfied, f"run unsatisfied, deficits {result.deficits}"
        costs.append(result.total_cost)
    return float(np.mean(costs))


@pytest.fixture(scope="module")
def sweep_results():
    rows = []
    for minority in (0.3, 0.1, 0.05, 0.02):
        sources, spec = build_setting(minority)
        ratio = mean_cost(sources, spec, RatioCollPolicy)
        random = mean_cost(sources, spec, RandomPolicy)
        round_robin = mean_cost(sources, spec, RoundRobinPolicy)
        rows.append(
            (
                minority,
                round(ratio, 1),
                round(random, 1),
                round(round_robin, 1),
                round(random / ratio, 2),
            )
        )
    print_table(
        "E1: DT cost vs minority fraction (RatioColl vs baselines)",
        ["minority", "RatioColl", "Random", "RoundRobin", "Random/Ratio"],
        rows,
    )
    return rows


def test_ratio_coll_dominates_and_gap_grows(sweep_results):
    for _, ratio, random, round_robin, _ in sweep_results:
        assert ratio <= random
        assert ratio <= round_robin
    # The advantage factor grows as the minority gets rarer.
    factors = [row[4] for row in sweep_results]
    assert factors[-1] > factors[0]
    assert factors[-1] > 2.0


def test_benchmark_ratio_coll_run(benchmark, sweep_results):
    sources, spec = build_setting(0.05)
    result = benchmark.pedantic(
        lambda: tailor(sources, spec, RatioCollPolicy(), rng=1),
        rounds=3,
        iterations=1,
    )
    assert result.satisfied
