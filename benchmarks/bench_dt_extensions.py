"""E3 — DT extensions from tutorial §5: range counts, marginal counts,
overlap-aware collection.

Reproduced shapes:
* range requirements ``[lo, hi]`` cost no more than exact ``hi`` counts
  and no less than exact ``lo`` counts;
* marginal (per-attribute) requirements are strictly cheaper than the
  corresponding intersectional ones (one row serves several needs);
* with overlapping sources, overlap-aware scoring reduces duplicate
  draws versus overlap-blind RatioColl.
"""

import numpy as np
import pytest
from benchmarks.conftest import print_table

from respdi.datagen import make_source_tables, skewed_group_distributions
from respdi.datagen.population import default_health_population
from respdi.datagen.sources import overlapping_source_tables
from respdi.tailoring import (
    CountSpec,
    MarginalCountSpec,
    OverlapAwareRatioCollPolicy,
    RangeCountSpec,
    RatioCollPolicy,
    TableSource,
    tailor,
)

SEEDS = (1, 2, 3)


@pytest.fixture(scope="module")
def population():
    return default_health_population(minority_fraction=0.1)


@pytest.fixture(scope="module")
def sources(population):
    dists = skewed_group_distributions(
        population.group_distribution(), 4, concentration=40.0,
        specialized={0: ("F", "black")}, specialization_mass=0.5, rng=13,
    )
    tables = make_source_tables(population, dists, 6000, rng=14)
    return [TableSource(f"s{i}", t) for i, t in enumerate(tables)]


def mean_cost(sources, spec):
    costs = []
    for seed in SEEDS:
        result = tailor(
            sources, spec, RatioCollPolicy(), rng=seed, max_steps=150_000
        )
        assert result.satisfied, f"unsatisfied, deficits {result.deficits}"
        costs.append(result.total_cost)
    return float(np.mean(costs))


@pytest.fixture(scope="module")
def range_results(population, sources):
    lo, hi = 30, 60
    exact_lo = CountSpec(("gender", "race"), {g: lo for g in population.groups})
    exact_hi = CountSpec(("gender", "race"), {g: hi for g in population.groups})
    ranged = RangeCountSpec(
        ("gender", "race"), {g: (lo, hi) for g in population.groups}
    )
    rows = [
        (f"exact {lo}/group", round(mean_cost(sources, exact_lo), 1)),
        (f"range [{lo},{hi}]/group", round(mean_cost(sources, ranged), 1)),
        (f"exact {hi}/group", round(mean_cost(sources, exact_hi), 1)),
    ]
    print_table("E3a: range-count requirements", ["spec", "mean cost"], rows)
    return dict(rows)


def test_range_cost_sandwiched(range_results):
    lo_cost = range_results["exact 30/group"]
    range_cost = range_results["range [30,60]/group"]
    hi_cost = range_results["exact 60/group"]
    assert lo_cost <= range_cost * 1.05
    assert range_cost <= hi_cost * 1.05


@pytest.fixture(scope="module")
def marginal_results(population, sources):
    need = 60
    intersectional = CountSpec(
        ("gender", "race"), {g: need // 2 for g in population.groups}
    )
    marginal = MarginalCountSpec(
        ("gender", "race"),
        {
            "gender": {"F": need, "M": need},
            "race": {"white": need, "black": need},
        },
    )
    rows = [
        ("intersectional 30/cell", round(mean_cost(sources, intersectional), 1)),
        ("marginal 60/value", round(mean_cost(sources, marginal), 1)),
    ]
    print_table(
        "E3b: marginal vs intersectional requirements", ["spec", "mean cost"], rows
    )
    return dict(rows)


def test_marginal_cheaper_than_intersectional(marginal_results):
    # Both guarantee >= 60 rows per gender value and per race value, but
    # the intersectional spec pins where they come from; marginal specs
    # exploit double-counting and must be cheaper.
    assert (
        marginal_results["marginal 60/value"]
        < marginal_results["intersectional 30/cell"]
    )


@pytest.fixture(scope="module")
def overlap_results(population):
    dists = skewed_group_distributions(
        population.group_distribution(), 4, concentration=4.0, rng=15
    )
    tables, _ = overlapping_source_tables(
        population, dists, 1500, overlap=0.6, rng=16
    )
    sources = [TableSource(f"o{i}", t) for i, t in enumerate(tables)]
    spec = CountSpec(("gender", "race"), {g: 25 for g in population.groups})
    rows = []
    for name, factory in (
        ("RatioColl (overlap-blind)", RatioCollPolicy),
        ("OverlapAware", OverlapAwareRatioCollPolicy),
    ):
        costs, duplicates = [], []
        for seed in SEEDS:
            result = tailor(
                sources, spec, factory(), rng=seed, dedupe_column="_id",
                max_steps=100_000,
            )
            assert result.satisfied
            costs.append(result.total_cost)
            duplicates.append(sum(result.duplicates))
        rows.append(
            (name, round(float(np.mean(costs)), 1), round(float(np.mean(duplicates)), 1))
        )
    print_table(
        "E3c: overlap-aware tailoring (60% shared rows)",
        ["policy", "mean cost", "mean duplicates"],
        rows,
    )
    return {row[0]: row for row in rows}


def test_overlap_awareness_helps(overlap_results):
    blind = overlap_results["RatioColl (overlap-blind)"]
    aware = overlap_results["OverlapAware"]
    assert aware[1] <= blind[1] * 1.1  # cost no worse (usually better)


def test_benchmark_range_spec_run(
    benchmark, population, sources, range_results, marginal_results,
    overlap_results,
):
    spec = RangeCountSpec(
        ("gender", "race"), {g: (20, 40) for g in population.groups}
    )
    result = benchmark.pedantic(
        lambda: tailor(sources, spec, RatioCollPolicy(), rng=1),
        rounds=3, iterations=1,
    )
    assert result.satisfied
