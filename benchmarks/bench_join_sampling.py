"""E4 — Uniform & independent sampling over joins (Chaudhuri'99 / Zhao'18).

Reproduced shapes:
* sample-then-join is biased (near-zero chi-square p-value against the
  join's key distribution) while accept-reject and the generic chain
  sampler are uniform (p-value not rejected);
* acceptance rate degrades as the frequency upper bound loosens — the
  latency/throughput trade-off the tutorial attributes to the Zhao
  framework;
* exact-weight chain sampling never rejects.
"""

import numpy as np
import pytest
from benchmarks.conftest import print_table

from respdi.sampling import (
    AcceptRejectJoinSampler,
    ChainJoinSampler,
    ChainJoinSpec,
    full_join,
    sample_then_join,
)
from respdi.stats import chi_square_goodness_of_fit
from respdi.table import Schema, Table


def zipf_table(prefix, n, seed, n_keys=15, skew=1.5):
    rng = np.random.default_rng(seed)
    keys = [f"k{i}" for i in range(n_keys)]
    schema = Schema([("k", "categorical"), (prefix, "numeric")])
    rows = [
        (keys[min(int(rng.zipf(skew)) - 1, n_keys - 1)], float(rng.normal()))
        for _ in range(n)
    ]
    return Table.from_rows(schema, rows)


@pytest.fixture(scope="module")
def tables():
    return zipf_table("a", 400, 1), zipf_table("b", 400, 2)


def key_share(table, joined):
    total = len(joined)
    return {k: c / total for k, c in joined.value_counts("k").items()}


def uniformity_p_value(sample, joined):
    shares = key_share(sample, joined)
    truth = key_share(joined, joined)
    keys = sorted(truth)
    observed = [sample.value_counts("k").get(k, 0) for k in keys]
    expected = [truth[k] for k in keys]
    _, p = chi_square_goodness_of_fit(observed, expected)
    return p


@pytest.fixture(scope="module")
def uniformity_results(tables):
    left, right = tables
    joined = full_join(left, right, ["k"])
    n = 4000

    ar = AcceptRejectJoinSampler(left, right, "k", rng=3)
    ar_sample = ar.sample(n)
    chain = ChainJoinSampler(ChainJoinSpec([left, right], [("k", "k")]), rng=4)
    chain_sample = chain.materialize(chain.sample(n))
    # Strawman repeated to accumulate a comparable sample.
    strawman_parts = [
        sample_then_join(left, right, ["k"], 0.25, 0.25, rng=seed)
        for seed in range(40)
    ]
    strawman = strawman_parts[0]
    for part in strawman_parts[1:]:
        strawman = strawman.concat(part)

    rows = [
        ("accept-reject (exact)", len(ar_sample),
         f"{uniformity_p_value(ar_sample, joined):.4f}"),
        ("chain sampler (exact)", len(chain_sample),
         f"{uniformity_p_value(chain_sample, joined):.4f}"),
        ("sample-then-join", len(strawman),
         f"{uniformity_p_value(strawman, joined):.2e}"),
    ]
    print_table(
        "E4a: uniformity over the join (chi-square p-value vs join shares)",
        ["sampler", "sample size", "p-value"],
        rows,
    )
    return {row[0]: float(row[2]) for row in rows}


def test_uniform_samplers_pass_strawman_fails(uniformity_results):
    assert uniformity_results["accept-reject (exact)"] > 0.001
    assert uniformity_results["chain sampler (exact)"] > 0.001
    assert uniformity_results["sample-then-join"] < 1e-4


@pytest.fixture(scope="module")
def acceptance_results(tables):
    left, right = tables
    true_max = max(right.value_counts("k").values())
    rows = []
    for factor in (1, 2, 5, 10):
        sampler = AcceptRejectJoinSampler(
            left, right, "k", statistics="upper_bound",
            frequency_upper_bound=true_max * factor, rng=5,
        )
        sampler.sample(1000)
        rows.append((f"{factor}x true max fanout", round(sampler.stats.acceptance_rate, 3)))
    exact = AcceptRejectJoinSampler(left, right, "k", rng=6)
    exact.sample(1000)
    rows.insert(0, ("exact frequencies", round(exact.stats.acceptance_rate, 3)))
    print_table(
        "E4b: acceptance rate vs bound looseness", ["statistics", "acceptance"], rows
    )
    return rows


def test_acceptance_degrades_with_bound(acceptance_results):
    rates = [rate for _, rate in acceptance_results]
    # Exact frequencies and a tight (1x) bound are the same test up to
    # seed noise; beyond that, looser bounds strictly lower acceptance.
    assert abs(rates[0] - rates[1]) < 0.08
    assert rates[1:] == sorted(rates[1:], reverse=True)
    assert rates[0] > 3 * rates[-1]


def test_chain_exact_never_rejects(tables):
    left, right = tables
    third = zipf_table("c", 400, 7)
    spec = ChainJoinSpec([left, right, third], [("k", "k"), ("k", "k")])
    sampler = ChainJoinSampler(spec, rng=8)
    sampler.sample(2000)
    assert sampler.stats.acceptance_rate == 1.0


def test_benchmark_accept_reject_throughput(
    benchmark, tables, uniformity_results, acceptance_results
):
    left, right = tables
    sampler = AcceptRejectJoinSampler(left, right, "k", rng=9)
    benchmark(lambda: sampler.sample(100))


def test_benchmark_chain_exact_throughput(benchmark, tables):
    left, right = tables
    sampler = ChainJoinSampler(
        ChainJoinSpec([left, right], [("k", "k")]), rng=10
    )
    benchmark(lambda: sampler.sample(100))
