"""E2 — Distribution tailoring with unknown distributions (Nargesian'21).

Reproduced shape: when source group-mixes are hidden, the
exploration-exploitation policy (UCB) pays a learning overhead over the
known-distribution optimum but still **clearly beats non-adaptive
selection**, and the gap to RatioColl (which is given the distributions)
bounds the price of learning.  Includes the ablation from DESIGN.md §3:
UCB vs epsilon-greedy vs pure exploitation.
"""

import numpy as np
import pytest
from benchmarks.conftest import print_table

from respdi.datagen import make_source_tables
from respdi.datagen.population import default_health_population
from respdi.tailoring import (
    CountSpec,
    EpsilonGreedyPolicy,
    ExploitPolicy,
    RandomPolicy,
    RatioCollPolicy,
    TableSource,
    UCBPolicy,
    tailor,
)

SEEDS = (1, 2, 3, 4)


def build_sources(publish):
    population = default_health_population(minority_fraction=0.05)
    base = population.group_distribution()
    # Most sources are useless for the minority; one is specialized.
    useless = {g: (0.5 if g[1] == "white" else 0.0) for g in base}
    dists = [useless, useless, useless, {g: 0.25 for g in base}]
    tables = make_source_tables(population, dists, 4000, rng=12)
    sources = [
        TableSource(f"s{i}", t, publish_distribution=publish)
        for i, t in enumerate(tables)
    ]
    spec = CountSpec(("gender", "race"), {g: 25 for g in population.groups})
    return sources, spec


def mean_cost(sources, spec, policy_factory):
    return float(
        np.mean(
            [tailor(sources, spec, policy_factory(), rng=s).total_cost for s in SEEDS]
        )
    )


@pytest.fixture(scope="module")
def results():
    hidden, spec = build_sources(publish=False)
    known, _ = build_sources(publish=True)
    rows = [
        ("RatioColl (knows dists)", round(mean_cost(known, spec, RatioCollPolicy), 1)),
        ("UCB", round(mean_cost(hidden, spec, UCBPolicy), 1)),
        ("EpsGreedy(0.1)", round(mean_cost(hidden, spec, lambda: EpsilonGreedyPolicy(0.1)), 1)),
        ("Exploit only", round(mean_cost(hidden, spec, ExploitPolicy), 1)),
        ("Random", round(mean_cost(hidden, spec, RandomPolicy), 1)),
    ]
    print_table("E2: DT cost under unknown distributions", ["policy", "mean cost"], rows)
    return dict(rows)


def test_learning_beats_random(results):
    assert results["UCB"] < results["Random"]
    assert results["EpsGreedy(0.1)"] < results["Random"]


def test_known_distributions_lower_bound(results):
    # Knowing the distributions can only help.
    assert results["RatioColl (knows dists)"] <= results["UCB"] * 1.1


def test_benchmark_ucb_run(benchmark, results):
    hidden, spec = build_sources(publish=False)
    result = benchmark.pedantic(
        lambda: tailor(hidden, spec, UCBPolicy(), rng=1), rounds=3, iterations=1
    )
    assert result.satisfied
