"""Obs overhead — instrumentation must be near-free when disabled.

The observability layer (:mod:`respdi.obs`) decorates hot paths such as
:meth:`MinHasher.signature`.  The contract is that with observability
*disabled* (the default) each instrumented call pays only one module
attribute check.  This benchmark compares the undecorated function
(``signature.__wrapped__``) against the decorated one, both with obs
off, and asserts the relative overhead stays within 5%; a third round
measures the enabled path for reference (not asserted — it pays for a
real histogram update).

Run with timing::

    PYTHONPATH=src python -m pytest benchmarks/bench_obs_overhead.py -q

Under ``--benchmark-disable`` each benchmarked callable still runs once,
so the correctness assertions (identical signatures) are exercised in
the CI smoke job too.
"""

import numpy as np
import pytest
from benchmarks.conftest import print_table

from respdi import obs
from respdi.discovery import MinHasher

N_VALUES = 2000


@pytest.fixture(scope="module")
def hasher():
    return MinHasher(num_hashes=128, rng=np.random.default_rng(7))


@pytest.fixture(scope="module")
def values():
    return {f"value_{i:06d}" for i in range(N_VALUES)}


@pytest.fixture(autouse=True)
def obs_disabled():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def test_signature_baseline_uninstrumented(benchmark, hasher, values):
    """The undecorated signature function (decorator bypassed entirely)."""
    raw = MinHasher.signature.__wrapped__
    result = benchmark(raw, hasher, values)
    assert len(result.values) == 128


def test_signature_instrumented_disabled(benchmark, hasher, values):
    """The decorated signature with obs disabled — the default code path."""
    result = benchmark(hasher.signature, values)
    assert len(result.values) == 128
    # Decorated and raw paths must produce identical signatures.
    raw = MinHasher.signature.__wrapped__(hasher, values)
    assert np.array_equal(result.values, raw.values)


def test_signature_instrumented_enabled(benchmark, hasher, values):
    """Reference: the enabled path (histogram + counter per call)."""
    obs.enable()
    result = benchmark(hasher.signature, values)
    assert len(result.values) == 128


def test_disabled_overhead_within_five_percent(hasher, values):
    """E-obs — the ISSUE acceptance bound, measured directly.

    pytest-benchmark rounds are compared in the printed table above, but
    group comparisons are advisory; this test enforces the <=5% bound
    with a min-of-rounds measurement that is robust to scheduler noise.
    """
    import time

    raw = MinHasher.signature.__wrapped__

    def best_of(fn, *args, rounds=7, iterations=30):
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            for _ in range(iterations):
                fn(*args)
            best = min(best, (time.perf_counter() - start) / iterations)
        return best

    best_of(raw, hasher, values, rounds=2)  # warm up both paths
    best_of(hasher.signature, values, rounds=2)
    baseline = best_of(raw, hasher, values)
    instrumented = best_of(hasher.signature, values)
    overhead = instrumented / baseline - 1.0
    print_table(
        "E-obs: disabled-instrumentation overhead on MinHasher.signature",
        ["variant", "best (ms)", "overhead"],
        [
            ["uninstrumented", f"{baseline * 1e3:.3f}", "-"],
            ["instrumented (obs off)", f"{instrumented * 1e3:.3f}", f"{overhead:+.2%}"],
        ],
    )
    assert overhead <= 0.05, f"disabled-obs overhead {overhead:+.2%} exceeds 5%"
