"""E20 — Continuous ingestion: refresh lag and read latency under load.

Reproduced shape: a daemon that re-ingests a slice of the lake every
cycle keeps detect→publish **refresh lag** bounded while concurrent
reads stay serviceable — the read p99 under sustained ingestion stays
under a generous gate (it catches a reader blocking on the writer, not
scheduler noise), and the catalog the daemon leaves behind is
entry-for-entry identical to a from-scratch build of the final lake
state.  The steady-state cost of *watching* (a no-op cycle: scan every
CSV, fingerprint-match everything, commit nothing) is reported
separately and exposed to ``--benchmark-json`` for CI.
"""

import threading
import time

import numpy as np
import pytest
from benchmarks.conftest import print_table

from respdi.catalog import CatalogStore
from respdi.catalog.store import table_fingerprint
from respdi.ingest import IngestDaemon
from respdi.service import KeywordQuery, QueryService
from respdi.table import Schema, Table, write_csv

SEED = 7
N_TABLES = 16
ROWS_PER_TABLE = 1500
CHANGED_PER_CYCLE = 4
CYCLES = 6
P99_GATE_SECONDS = 2.0

_SCHEMA = Schema([("key", "categorical"), ("f1", "numeric")])


def _make_table(index, version):
    rng = np.random.default_rng(1000 * version + index)
    draws = rng.integers(0, 300, size=ROWS_PER_TABLE)
    return Table(
        _SCHEMA,
        {
            "key": [f"k{index}_{value}" for value in draws],
            "f1": rng.normal(size=ROWS_PER_TABLE),
        },
    )


def _lake_state(version):
    """Tables 0..CHANGED_PER_CYCLE-1 churn per version; the rest don't."""
    return {
        f"t{index}": _make_table(
            index, version if index < CHANGED_PER_CYCLE else 0
        )
        for index in range(N_TABLES)
    }


def _write_lake(lake, tables):
    lake.mkdir(parents=True, exist_ok=True)
    for name, table in tables.items():
        write_csv(table, lake / f"{name}.csv")


def _percentile(ordered, fraction):
    return ordered[min(len(ordered) - 1, int(fraction * len(ordered)))]


def test_refresh_lag_and_read_p99_under_sustained_ingestion(tmp_path):
    lake = tmp_path / "lake"
    _write_lake(lake, _lake_state(0))
    catalog_dir = tmp_path / "cat"
    CatalogStore.build(catalog_dir, _lake_state(0), rng=SEED)
    service = QueryService(catalog_dir, cache_size=64)
    daemon = IngestDaemon(catalog_dir, lake, interval=0.0, service=service)

    lags = []
    read_latencies = []
    done = threading.Event()

    def reader():
        query = KeywordQuery(text="k0", k=5)
        while not done.is_set() or not read_latencies:
            start = time.perf_counter()
            service.query(query, cached=False)
            read_latencies.append(time.perf_counter() - start)

    thread = threading.Thread(target=reader)
    thread.start()
    try:
        for version in range(1, CYCLES + 1):
            _write_lake(lake, _lake_state(version))
            result = daemon.run_cycle()
            assert result.refreshed == CHANGED_PER_CYCLE, result.summary()
            lags.append(result.lag_seconds)
    finally:
        done.set()
        thread.join()

    # Steady state: the lake is current, so a cycle is pure watch cost.
    noop_start = time.perf_counter()
    noop = daemon.run_cycle()
    noop_seconds = time.perf_counter() - noop_start
    assert not noop.applied

    reads = sorted(read_latencies)
    read_p50 = _percentile(reads, 0.50)
    read_p99 = _percentile(reads, 0.99)
    ordered_lags = sorted(lags)
    print_table(
        "E20: continuous ingestion — refresh lag vs. read latency "
        f"({N_TABLES} tables x {ROWS_PER_TABLE} rows, "
        f"{CHANGED_PER_CYCLE} changed/cycle, {CYCLES} cycles, 1 reader)",
        ["metric", "p50", "p99/max"],
        [
            [
                "refresh lag (detect->publish), s",
                f"{_percentile(ordered_lags, 0.50):.3f}",
                f"{ordered_lags[-1]:.3f}",
            ],
            [
                f"read latency under ingestion, s ({len(reads)} reads)",
                f"{read_p50:.4f}",
                f"{read_p99:.4f}",
            ],
            ["no-op watch cycle (scan only), s", f"{noop_seconds:.3f}", "-"],
        ],
    )

    assert read_p99 < P99_GATE_SECONDS, (
        f"read p99 {read_p99:.3f}s under ingestion breaches the "
        f"{P99_GATE_SECONDS:.1f}s gate"
    )

    # Differential: the continuously ingested catalog holds exactly the
    # entries a cold build of the final lake state would.
    final = _lake_state(CYCLES)
    store = CatalogStore.open(catalog_dir)
    assert {name: store.meta(name)["fingerprint"] for name in store.names} == {
        name: table_fingerprint(table) for name, table in final.items()
    }


@pytest.fixture(scope="module")
def idle_daemon(tmp_path_factory):
    root = tmp_path_factory.mktemp("ingest-bench")
    lake = root / "lake"
    _write_lake(lake, _lake_state(0))
    CatalogStore.build(root / "cat", _lake_state(0), rng=SEED)
    return IngestDaemon(root / "cat", lake, interval=0.0)


def test_benchmark_noop_watch_cycle(benchmark, idle_daemon):
    """The steady-state watch cost CI tracks in ``BENCH_ingest.json``:
    scan + fingerprint every source, short-circuit, commit nothing."""
    result = benchmark(idle_daemon.run_cycle)
    assert not result.applied
