"""E9 — FairPrep-style intervention study (Schelter et al., EDBT 2020).

Reproduced shape: on data with historical label bias against the
minority, pre-processing interventions (reweighing, oversampling, SMOTE)
reduce the demographic-parity difference relative to the untreated
pipeline at a modest accuracy cost — the classic fairness/accuracy
frontier FairPrep was built to expose.
"""

import pytest
from benchmarks.conftest import print_table

from respdi.cleaning.fairprep import compare_interventions
from respdi.ml import GaussianNaiveBayes, LogisticRegression

FEATURES = ["x0", "x1", "x2", "x3"]


@pytest.fixture(scope="module")
def biased_table():
    """A population where the minority's feature shift is *aligned* with
    the label weights: the model can and does use the features as a group
    proxy, producing a large selection-rate gap for the untreated
    pipeline (the regime FairPrep's interventions target)."""
    from respdi.datagen.population import PopulationModel, SensitiveAttribute

    race = SensitiveAttribute("race", {"white": 0.75, "black": 0.25})
    label_weights = [1.0, -1.0, 1.0, -1.0]
    shift = 1.2
    population = PopulationModel(
        sensitive=[race],
        n_features=4,
        label_weights=label_weights,
        group_label_bias={("black",): -1.0},
        group_feature_shifts={
            ("black",): [-shift * w for w in label_weights],
            ("white",): [0.0, 0.0, 0.0, 0.0],
        },
    )
    return population.sample(4000, rng=41)


@pytest.fixture(scope="module")
def intervention_results(biased_table):
    results = compare_interventions(
        biased_table, FEATURES, "y", ["race"], rng=42
    )
    rows = []
    for name, result in results.items():
        summary = result.summary()
        rows.append(
            (
                name,
                round(summary["accuracy"], 3),
                round(summary["dp_difference"], 3),
                round(summary["disparate_impact"], 3),
                round(summary["eo_difference"], 3),
                round(summary["accuracy_parity"], 3),
            )
        )
    print_table(
        "E9: interventions vs fairness metrics (logistic regression)",
        ["intervention", "accuracy", "dp diff", "disp impact", "eo diff",
         "acc parity"],
        rows,
    )
    return results


def test_baseline_shows_bias(intervention_results):
    baseline = intervention_results["none"].report
    assert baseline.demographic_parity_difference > 0.1


def test_reweighing_improves_parity(intervention_results):
    baseline = intervention_results["none"].report
    reweighed = intervention_results["reweigh"].report
    assert (
        reweighed.demographic_parity_difference
        < baseline.demographic_parity_difference
    )
    assert reweighed.disparate_impact >= baseline.disparate_impact


def test_interventions_keep_reasonable_accuracy(intervention_results):
    baseline = intervention_results["none"].report.accuracy
    for name in ("reweigh", "oversample", "smote"):
        assert intervention_results[name].report.accuracy > baseline - 0.1


@pytest.fixture(scope="module")
def model_ablation(biased_table):
    rows = []
    for model_name, factory in (
        ("logistic", LogisticRegression),
        ("naive bayes", GaussianNaiveBayes),
    ):
        results = compare_interventions(
            biased_table, FEATURES, "y", ["race"],
            interventions=("none", "reweigh"),
            model_factory=factory, rng=43,
        )
        for intervention, result in results.items():
            summary = result.summary()
            rows.append(
                (model_name, intervention,
                 round(summary["accuracy"], 3),
                 round(summary["dp_difference"], 3))
            )
    print_table(
        "E9b: intervention effect across model families",
        ["model", "intervention", "accuracy", "dp diff"],
        rows,
    )
    return rows


def test_effect_holds_across_models(model_ablation):
    by_key = {(m, i): (a, d) for m, i, a, d in model_ablation}
    for model in ("logistic", "naive bayes"):
        assert by_key[(model, "reweigh")][1] <= by_key[(model, "none")][1] + 0.02


def test_benchmark_full_fairprep_run(
    benchmark, biased_table, intervention_results, model_ablation
):
    def run():
        return compare_interventions(
            biased_table, FEATURES, "y", ["race"],
            interventions=("none", "reweigh"), rng=44,
        )

    benchmark.pedantic(run, rounds=2, iterations=1)
