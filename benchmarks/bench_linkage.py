"""E14 — Fairness-aware entity resolution (tutorial §5).

Reproduced shapes:
* ER quality is *not* group-neutral: as one group's record corruption
  rate rises, that group's pairwise recall falls while the other's stays
  put, so the recall-parity difference grows — the "bias in the linked
  data" the tutorial warns about;
* lowering the match threshold trades precision for recall and shrinks
  the group gap (the classical fairness/quality dial);
* blocking exhibits the reduction/recall trade-off.
"""

import pytest
from benchmarks.conftest import print_table

from respdi.datagen import generate_person_registry
from respdi.linkage import (
    FieldComparator,
    RecordMatcher,
    blocking_stats,
    evaluate_linkage,
    jaro_winkler_similarity,
    key_blocking,
    levenshtein_similarity,
    numeric_similarity,
    sorted_neighborhood_blocking,
)


def build_matcher(threshold=0.85):
    return RecordMatcher(
        [
            FieldComparator("name", jaro_winkler_similarity, 3.0),
            FieldComparator("zip", levenshtein_similarity, 1.0),
            FieldComparator(
                "age", lambda a, b: numeric_similarity(a, b, scale=3.0), 1.0
            ),
        ],
        threshold=threshold,
    )


def candidates_for(registry):
    return key_blocking(
        registry, lambda r: r["name"][:2] if r["name"] else None
    ) | sorted_neighborhood_blocking(registry, lambda r: r["name"], window=6)


@pytest.fixture(scope="module")
def asymmetry_sweep():
    rows = []
    reports = {}
    for blue_rate in (0.1, 0.3, 0.5, 0.7):
        registry = generate_person_registry(
            400, duplicates_per_entity=1,
            corruption_rates={"blue": blue_rate, "green": 0.1}, rng=91,
        )
        matcher = build_matcher()
        result = matcher.match(registry, candidates_for(registry))
        report = evaluate_linkage(registry, result.matches, "_entity", ["group"])
        reports[blue_rate] = report
        rows.append(
            (
                blue_rate,
                round(report.group_recall.get(("blue",), 0.0), 3),
                round(report.group_recall.get(("green",), 0.0), 3),
                round(report.recall_parity_difference, 3),
                round(report.precision, 3),
            )
        )
    print_table(
        "E14a: per-group ER recall vs blue-group corruption rate "
        "(green fixed at 0.1)",
        ["blue corruption", "recall blue", "recall green", "parity diff",
         "precision"],
        rows,
    )
    return reports


def test_parity_gap_grows_with_corruption_asymmetry(asymmetry_sweep):
    gaps = [
        asymmetry_sweep[rate].recall_parity_difference
        for rate in sorted(asymmetry_sweep)
    ]
    assert gaps[-1] > gaps[0] + 0.1
    # Green recall barely moves; blue recall collapses.
    first = asymmetry_sweep[0.1]
    last = asymmetry_sweep[0.7]
    assert last.group_recall[("blue",)] < first.group_recall[("blue",)] - 0.15
    assert abs(
        last.group_recall[("green",)] - first.group_recall[("green",)]
    ) < 0.1


def test_worst_group_is_the_corrupted_one(asymmetry_sweep):
    for rate, report in asymmetry_sweep.items():
        if rate > 0.1:
            assert report.worst_group == ("blue",)


@pytest.fixture(scope="module")
def threshold_sweep():
    registry = generate_person_registry(
        400, duplicates_per_entity=1,
        corruption_rates={"blue": 0.5, "green": 0.1}, rng=92,
    )
    pairs = candidates_for(registry)
    rows = []
    reports = {}
    for threshold in (0.95, 0.9, 0.85, 0.8, 0.75):
        matcher = build_matcher(threshold)
        result = matcher.match(registry, pairs)
        report = evaluate_linkage(registry, result.matches, "_entity", ["group"])
        reports[threshold] = report
        rows.append(
            (
                threshold,
                round(report.precision, 3),
                round(report.recall, 3),
                round(report.recall_parity_difference, 3),
            )
        )
    print_table(
        "E14b: match threshold vs precision/recall/parity",
        ["threshold", "precision", "recall", "parity diff"],
        rows,
    )
    return reports


def test_threshold_trades_precision_for_recall(threshold_sweep):
    thresholds = sorted(threshold_sweep, reverse=True)
    recalls = [threshold_sweep[t].recall for t in thresholds]
    precisions = [threshold_sweep[t].precision for t in thresholds]
    assert recalls == sorted(recalls)  # recall grows as threshold drops
    assert precisions[0] >= precisions[-1] - 1e-9


def test_lower_threshold_narrows_group_gap(threshold_sweep):
    strict = threshold_sweep[0.95].recall_parity_difference
    lenient = threshold_sweep[0.75].recall_parity_difference
    assert lenient <= strict


@pytest.fixture(scope="module")
def blocking_tradeoff():
    registry = generate_person_registry(
        500, duplicates_per_entity=1, rng=93
    )
    schemes = {
        "exact name": key_blocking(registry, lambda r: r["name"]),
        "name prefix 2": key_blocking(
            registry, lambda r: r["name"][:2] if r["name"] else None
        ),
        "name prefix 1": key_blocking(
            registry, lambda r: r["name"][:1] if r["name"] else None
        ),
        "SNB window 6": sorted_neighborhood_blocking(
            registry, lambda r: r["name"], window=6
        ),
    }
    rows = []
    stats = {}
    for name, pairs in schemes.items():
        stat = blocking_stats(registry, pairs, "_entity")
        stats[name] = stat
        rows.append(
            (
                name,
                stat.candidate_pairs,
                round(stat.reduction_ratio, 4),
                round(stat.pair_recall, 3),
            )
        )
    print_table(
        "E14c: blocking reduction vs pair recall",
        ["scheme", "candidates", "reduction", "pair recall"],
        rows,
    )
    return stats


def test_blocking_reduction_recall_tradeoff(blocking_tradeoff):
    exact = blocking_tradeoff["exact name"]
    prefix1 = blocking_tradeoff["name prefix 1"]
    assert exact.reduction_ratio > prefix1.reduction_ratio
    assert exact.pair_recall < prefix1.pair_recall


def test_benchmark_match_pass(
    benchmark, asymmetry_sweep, threshold_sweep, blocking_tradeoff
):
    registry = generate_person_registry(300, duplicates_per_entity=1, rng=94)
    pairs = candidates_for(registry)
    matcher = build_matcher()
    benchmark.pedantic(
        lambda: matcher.match(registry, pairs), rounds=3, iterations=1
    )


def test_benchmark_blocking(benchmark):
    registry = generate_person_registry(800, duplicates_per_entity=1, rng=95)
    benchmark(
        lambda: sorted_neighborhood_blocking(
            registry, lambda r: r["name"], window=6
        )
    )
