"""E15 — Catalog warm starts (persisted discovery state vs. re-sketching).

Reproduced shape: over a ≥50-table synthetic lake, opening the persisted
catalog and running a discovery query is **at least 5× faster** than
building a cold :class:`DataLakeIndex` from raw tables and running the
same query — while returning byte-identical results.  The win is the
point of the catalog subsystem: per-row sketching (value hashing,
MinHash matrices, correlation sketches) is the expensive part of lake
discovery, and the catalog makes it a one-time cost.
"""

import time

import numpy as np
import pytest
from benchmarks.conftest import print_table

from respdi.catalog import CatalogStore
from respdi.discovery import DataLakeIndex
from respdi.table import Schema, Table

SEED = 7
N_TABLES = 55
ROWS_PER_TABLE = 8000
KEY_DOMAIN = 600

_SCHEMA = Schema([("key", "categorical"), ("f1", "numeric"), ("f2", "numeric")])


def _make_table(index, rng):
    # Every fourth table draws keys from a shared domain so join and
    # containment queries return real candidates; the rest are distractors.
    prefix = "shared" if index % 4 == 0 else f"k{index}"
    draws = rng.integers(0, KEY_DOMAIN, size=ROWS_PER_TABLE)
    return Table(
        _SCHEMA,
        {
            "key": [f"{prefix}_{value}" for value in draws],
            "f1": rng.normal(size=ROWS_PER_TABLE),
            "f2": rng.normal(size=ROWS_PER_TABLE),
        },
    )


@pytest.fixture(scope="module")
def lake_tables():
    rng = np.random.default_rng(13)
    tables = {f"t{i}": _make_table(i, rng) for i in range(N_TABLES)}
    tables["query"] = tables["t0"].head(1000)
    return tables


@pytest.fixture(scope="module")
def catalog(lake_tables, tmp_path_factory):
    directory = tmp_path_factory.mktemp("catalog") / "cat"
    CatalogStore.build(directory, lake_tables, rng=SEED)
    return directory


def _run_queries(index, lake_tables):
    query = lake_tables["query"]
    return (
        index.keyword_search("shared", k=10),
        index.unionable_tables(query, k=10),
        index.joinable_columns(query.unique("key"), k=10),
        index.containment_search(query.unique("key"), 0.5, k=10),
    )


def test_warm_open_at_least_5x_faster_than_cold(lake_tables, catalog):
    assert len(lake_tables) >= 50

    start = time.perf_counter()
    cold = DataLakeIndex(rng=SEED)
    for name, table in lake_tables.items():
        cold.register(name, table)
    cold_results = _run_queries(cold, lake_tables)
    cold_seconds = time.perf_counter() - start

    start = time.perf_counter()
    warm = CatalogStore.open(catalog).index()
    warm_results = _run_queries(warm, lake_tables)
    warm_seconds = time.perf_counter() - start

    speedup = cold_seconds / warm_seconds
    print_table(
        "E15: cold build vs. warm catalog open "
        f"({len(lake_tables)} tables x {ROWS_PER_TABLE} rows, num_hashes=128)",
        ["path", "seconds", "speedup"],
        [
            ["cold (sketch every table)", f"{cold_seconds:.3f}", "1.0x"],
            ["warm (catalog open)", f"{warm_seconds:.3f}", f"{speedup:.1f}x"],
        ],
    )

    assert warm_results == cold_results, "warm results must match cold exactly"
    assert speedup >= 5.0, (
        f"warm open must be >=5x faster than cold build, got {speedup:.1f}x"
    )


def test_incremental_refresh_skips_unchanged_tables(lake_tables, catalog):
    store = CatalogStore.open(catalog)
    names = store.names[:10]

    start = time.perf_counter()
    rebuilt = sum(store.refresh(name, lake_tables[name]) for name in names)
    hit_seconds = time.perf_counter() - start

    changed = lake_tables[names[0]].head(50)
    start = time.perf_counter()
    store.refresh(names[0], changed)
    rebuild_seconds = time.perf_counter() - start
    store.refresh(names[0], lake_tables[names[0]])  # restore

    print_table(
        "E15b: refresh cost (10 unchanged tables vs. 1 changed)",
        ["operation", "seconds"],
        [
            ["refresh x10, all fingerprint hits", f"{hit_seconds:.4f}"],
            ["refresh x1, content changed", f"{rebuild_seconds:.4f}"],
        ],
    )
    assert rebuilt == 0, "unchanged tables must not be re-sketched"
