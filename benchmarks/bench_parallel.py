"""E16 — Parallel execution engine (catalog build fan-out vs. serial).

Reproduced shape: on a ≥32-table synthetic lake, a catalog build that
fans per-table fingerprinting + sketching out over 4 worker processes is
**at least 2× faster** than the serial build on a ≥4-core host — while
producing a byte-identical catalog (the engine's serial-equivalence
contract, locked down by ``tests/test_parallel_differential.py``).
Identity is asserted unconditionally; the speedup assertion activates
only when the host actually has the cores (a single-core container can
verify correctness but cannot manufacture parallelism).

A second table reports the ``threads`` backend for contrast: sketching
is CPU-bound pure Python, so threads buy little under the GIL — the
reason the CLI's ``--jobs`` maps to the ``processes`` backend.
"""

import hashlib
import os
import time

import numpy as np
import pytest
from benchmarks.conftest import print_table

from respdi.catalog import CatalogStore
from respdi.parallel import ExecutionContext
from respdi.table import Schema, Table

SEED = 7
N_TABLES = 36
ROWS_PER_TABLE = 2500
KEY_DOMAIN = 900
N_JOBS = 4

_SCHEMA = Schema(
    [("key", "categorical"), ("tag", "categorical"), ("f1", "numeric")]
)


def _make_table(index, rng):
    prefix = "shared" if index % 4 == 0 else f"k{index}"
    draws = rng.integers(0, KEY_DOMAIN, size=ROWS_PER_TABLE)
    tags = rng.integers(0, KEY_DOMAIN, size=ROWS_PER_TABLE)
    return Table(
        _SCHEMA,
        {
            "key": [f"{prefix}_{value}" for value in draws],
            "tag": [f"tag_{index}_{value}" for value in tags],
            "f1": rng.normal(size=ROWS_PER_TABLE),
        },
    )


@pytest.fixture(scope="module")
def lake_tables():
    rng = np.random.default_rng(13)
    return {f"t{i}": _make_table(i, rng) for i in range(N_TABLES)}


def _catalog_hashes(directory):
    hashes = {}
    for path in sorted(directory.rglob("*")):
        if path.is_file() and path.name != "writer.lock":
            hashes[str(path.relative_to(directory))] = hashlib.blake2b(
                path.read_bytes(), digest_size=16
            ).hexdigest()
    return hashes


def _timed_build(directory, lake_tables, context):
    start = time.perf_counter()
    CatalogStore.build(directory, lake_tables, rng=SEED, context=context)
    return time.perf_counter() - start


def test_parallel_build_2x_faster_and_byte_identical(lake_tables, tmp_path):
    assert len(lake_tables) >= 32

    contexts = {
        "serial": ExecutionContext(),
        "threads": ExecutionContext(backend="threads", n_jobs=N_JOBS),
        "processes": ExecutionContext(backend="processes", n_jobs=N_JOBS),
    }
    seconds = {}
    hashes = {}
    for label, context in contexts.items():
        directory = tmp_path / label
        seconds[label] = _timed_build(directory, lake_tables, context)
        hashes[label] = _catalog_hashes(directory)

    speedups = {
        label: seconds["serial"] / seconds[label] for label in contexts
    }
    cores = os.cpu_count() or 1
    print_table(
        "E16: catalog build, serial vs. parallel "
        f"({N_TABLES} tables x {ROWS_PER_TABLE} rows, n_jobs={N_JOBS}, "
        f"{cores} core(s))",
        ["backend", "seconds", "speedup"],
        [
            [label, f"{seconds[label]:.3f}", f"{speedups[label]:.2f}x"]
            for label in contexts
        ],
    )

    for label in ("threads", "processes"):
        assert hashes[label] == hashes["serial"], (
            f"{label} catalog differs from serial — determinism contract broken"
        )
    if cores >= N_JOBS:
        assert speedups["processes"] >= 2.0, (
            f"processes build must be >=2x faster on a {cores}-core host, "
            f"got {speedups['processes']:.2f}x"
        )


def test_parallel_matching_identical_and_reported(tmp_path):
    """Chunked pair scoring returns the serial scores exactly."""
    from respdi.linkage import (
        FieldComparator,
        RecordMatcher,
        jaro_winkler_similarity,
        key_blocking,
    )
    from respdi.datagen import generate_person_registry

    registry = generate_person_registry(
        400, duplicates_per_entity=1, corruption_rates={"blue": 0.3}, rng=5
    )
    candidates = key_blocking(
        registry, lambda r: r["name"][:2] if r["name"] else None
    )
    matcher = RecordMatcher(
        [FieldComparator("name", jaro_winkler_similarity)], threshold=0.85
    )

    start = time.perf_counter()
    serial = matcher.match(registry, candidates)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    threaded = matcher.match(
        registry,
        candidates,
        context=ExecutionContext(backend="threads", n_jobs=N_JOBS),
    )
    threads_seconds = time.perf_counter() - start

    print_table(
        f"E16b: pair scoring ({len(candidates)} candidate pairs)",
        ["backend", "seconds"],
        [
            ["serial", f"{serial_seconds:.3f}"],
            [f"threads({N_JOBS})", f"{threads_seconds:.3f}"],
        ],
    )
    assert threaded.scores == serial.scores
    assert threaded.matches == serial.matches
