"""Shared helpers for the experiment benchmarks.

Each ``bench_*.py`` file regenerates one experiment from the
DESIGN.md experiment index (E1..E12).  Since the reproduced paper is a
tutorial with no tables/figures of its own, every experiment reproduces
the *headline result shape* of one system the tutorial surveys; the
expected shapes are asserted (who wins, roughly by how much) and the
measured series are printed so they can be recorded in EXPERIMENTS.md.
"""

import sys

import pytest


def print_table(title, headers, rows):
    """Print an aligned experiment table (visible in bench output)."""
    out = sys.stdout
    out.write(f"\n### {title}\n")
    widths = [
        max(len(str(header)), max((len(str(row[i])) for row in rows), default=0))
        for i, header in enumerate(headers)
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    out.write(line + "\n")
    out.write("  ".join("-" * w for w in widths) + "\n")
    for row in rows:
        out.write("  ".join(str(c).ljust(w) for c, w in zip(row, widths)) + "\n")
    out.flush()


@pytest.fixture(scope="session")
def health_population():
    from respdi.datagen.population import default_health_population

    return default_health_population(minority_fraction=0.1)
