"""E12 — Budgeted data acquisition: data market (Li/Yu/Koudas'21) and
Slice Tuner (Tae & Whang'21).

Reproduced shapes:
* buying records improves validation accuracy, with diminishing returns
  in the budget;
* the explore-exploit consumer concentrates its budget on the slice its
  initial data lacks;
* Slice Tuner's curve-driven allocation gives the starved slice a larger
  share than size-proportional allocation and ends with lower per-slice
  loss imbalance.
"""

import numpy as np
import pytest
from benchmarks.conftest import print_table

from respdi.acquisition import DataProvider, ModelImprovementAcquirer, SliceTuner
from respdi.datagen.population import default_health_population
from respdi.table import Eq

FEATURES = ["x0", "x1", "x2", "x3"]


@pytest.fixture(scope="module")
def setting():
    population = default_health_population(
        minority_fraction=0.25, group_signal=1.8, label_bias_against_minority=-1.0
    )
    initial = population.sample_biased(
        150,
        {g: (0.48 if g[1] == "white" else 0.02) for g in population.groups},
        rng=71,
    )
    pool = population.sample(6000, rng=72)
    validation = population.sample(2000, rng=73)
    candidates = {f"race={r}": Eq("race", r) for r in ("white", "black")}
    return initial, pool, validation, candidates


@pytest.fixture(scope="module")
def budget_sweep(setting):
    initial, pool, validation, candidates = setting
    rows = []
    usage = {}
    for budget in (0, 200, 600, 1200):
        if budget == 0:
            acquirer = ModelImprovementAcquirer(
                initial, candidates, FEATURES, "y", validation
            )
            accuracy = acquirer._fit_and_score(initial)
            rows.append((budget, round(accuracy, 4), "-"))
            continue
        provider = DataProvider(pool, rng=74)
        acquirer = ModelImprovementAcquirer(
            initial, candidates, FEATURES, "y", validation,
            strategy="explore_exploit",
        )
        result = acquirer.run(provider, budget=budget, batch_size=100, rng=75)
        usage[budget] = result.predicate_usage
        rows.append(
            (budget, round(result.final_accuracy, 4), str(result.predicate_usage))
        )
    print_table(
        "E12a: validation accuracy vs acquisition budget (explore-exploit)",
        ["budget", "accuracy", "predicate usage"],
        rows,
    )
    return rows, usage


def test_accuracy_improves_with_budget(budget_sweep):
    rows, _ = budget_sweep
    accuracies = [accuracy for _, accuracy, _ in rows]
    assert accuracies[-1] > accuracies[0]


def test_explore_exploit_targets_missing_slice(budget_sweep):
    _, usage = budget_sweep
    final = usage[1200]
    assert final["race=black"] >= final["race=white"] * 0.8


@pytest.fixture(scope="module")
def slice_tuner_results(setting):
    initial, pool, validation, _ = setting
    slices = {f"race={r}": Eq("race", r) for r in ("white", "black")}
    rows = []
    outcomes = {}
    for strategy in ("curve", "uniform", "proportional"):
        provider = DataProvider(pool, rng=76)
        tuner = SliceTuner(slices, FEATURES, "y", validation, strategy=strategy)
        result = tuner.run(provider, initial, budget=800, rounds=4, rng=77)
        outcomes[strategy] = result
        rows.append(
            (
                strategy,
                result.allocations["race=black"],
                result.allocations["race=white"],
                round(result.final_total_loss, 4),
                round(result.final_imbalance, 4),
            )
        )
    print_table(
        "E12b: Slice Tuner allocation strategies (budget 800)",
        ["strategy", "to black", "to white", "final total loss",
         "final imbalance"],
        rows,
    )
    return outcomes


def test_curve_beats_proportional_on_minority_share(slice_tuner_results):
    def minority_share(result):
        total = sum(result.allocations.values())
        return result.allocations["race=black"] / total if total else 0.0

    assert minority_share(slice_tuner_results["curve"]) > minority_share(
        slice_tuner_results["proportional"]
    )


def test_all_strategies_reduce_total_loss(slice_tuner_results):
    for result in slice_tuner_results.values():
        assert result.final_total_loss <= result.total_loss_trajectory[0] + 0.02


@pytest.fixture(scope="module")
def correlation_market_results():
    """E12c: correlation buying on a join graph (Li et al., VLDB'18
    shape): coordinated key purchases reach the CI target at a fraction
    of random buying's cost, across correlation strengths."""
    from respdi.acquisition import PricedColumnSource, buy_correlation
    from respdi.table import Schema, Table

    rng = np.random.default_rng(101)
    rows = []
    outcomes = {}
    n, overlap = 4000, 2500
    for rho in (0.8, 0.5):
        keys = [f"k{i}" for i in range(n)]
        x = rng.normal(size=n)
        y = rho * x + np.sqrt(1 - rho**2) * rng.normal(size=n)
        start = n - overlap
        left_table = Table(
            Schema([("k", "categorical"), ("a", "numeric")]),
            {"k": keys, "a": x},
        )
        right_table = Table(
            Schema([("k", "categorical"), ("b", "numeric")]),
            {
                "k": keys[start:] + [f"only{i}" for i in range(start)],
                "b": list(y[start:]) + list(rng.normal(size=start)),
            },
        )
        for strategy in ("coordinated", "random"):
            left = PricedColumnSource(left_table, "k", "a", rng=102)
            right = PricedColumnSource(right_table, "k", "b", rng=103)
            result = buy_correlation(
                left, right, budget=6000, target_ci_width=0.2,
                strategy=strategy, rng=104,
            )
            outcomes[(rho, strategy)] = result
            rows.append(
                (
                    rho,
                    strategy,
                    round(result.estimate, 3),
                    result.pairs_used,
                    round(result.total_cost, 1),
                    "yes" if result.reached_target else "no",
                )
            )
    print_table(
        "E12c: correlation buying — coordinated vs random tuples",
        ["true rho", "strategy", "estimate", "pairs", "cost", "target met"],
        rows,
    )
    return outcomes


def test_coordinated_buying_cheaper(correlation_market_results):
    for rho in (0.8, 0.5):
        coordinated = correlation_market_results[(rho, "coordinated")]
        random = correlation_market_results[(rho, "random")]
        assert coordinated.reached_target
        if random.reached_target:
            assert coordinated.total_cost < random.total_cost
        assert abs(coordinated.estimate - rho) <= coordinated.ci_width


def test_benchmark_correlation_buying(benchmark, correlation_market_results):
    from respdi.acquisition import PricedColumnSource, buy_correlation
    from respdi.table import Schema, Table

    rng = np.random.default_rng(105)
    n = 2000
    keys = [f"k{i}" for i in range(n)]
    x = rng.normal(size=n)
    y = 0.6 * x + 0.8 * rng.normal(size=n)
    left_table = Table(
        Schema([("k", "categorical"), ("a", "numeric")]), {"k": keys, "a": x}
    )
    right_table = Table(
        Schema([("k", "categorical"), ("b", "numeric")]), {"k": keys, "b": y}
    )

    def run():
        left = PricedColumnSource(left_table, "k", "a", rng=106)
        right = PricedColumnSource(right_table, "k", "b", rng=107)
        return buy_correlation(left, right, budget=2000, rng=108)

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_benchmark_acquisition_campaign(
    benchmark, setting, budget_sweep, slice_tuner_results
):
    initial, pool, validation, candidates = setting

    def run():
        provider = DataProvider(pool, rng=78)
        acquirer = ModelImprovementAcquirer(
            initial, candidates, FEATURES, "y", validation
        )
        return acquirer.run(provider, budget=300, batch_size=100, rng=79)

    benchmark.pedantic(run, rounds=2, iterations=1)
