"""E11 — Fairness-aware range queries (Shetiya'22) and coverage-based
rewriting (Accinelli'20/21).

Reproduced shapes:
* refinement similarity decreases monotonically as the disparity bound
  tightens (the fairness/similarity frontier of the fair-range paper);
* the refined output always satisfies the bound;
* coverage rewriting's added-row cost grows with the per-group minimum.
"""

import numpy as np
import pytest
from benchmarks.conftest import print_table

from respdi.fairqueries import coverage_rewrite, fair_range_refinement, range_disparity
from respdi.table import Schema, Table


@pytest.fixture(scope="module")
def applicants():
    rng = np.random.default_rng(61)
    schema = Schema([("group", "categorical"), ("score", "numeric")])
    scores = np.concatenate(
        [rng.normal(42, 8, 1400), rng.normal(58, 8, 600)]
    )
    groups = ["blue"] * 1400 + ["green"] * 600
    return Table(schema, {"group": groups, "score": np.round(scores, 1)})


LO, HI = 30.0, 55.0


@pytest.fixture(scope="module")
def frontier(applicants):
    disparity, counts = range_disparity(applicants, "score", LO, HI, "group")
    rows = []
    for bound in (disparity, 400, 200, 100, 50, 20, 5):
        result = fair_range_refinement(
            applicants, "score", LO, HI, "group", max_disparity=bound
        )
        rows.append(
            (
                bound,
                f"[{result.lo:.1f}, {result.hi:.1f}]",
                round(result.similarity, 3),
                result.disparity,
                result.candidates_examined,
            )
        )
    print_table(
        f"E11a: fair-range frontier (original disparity {disparity})",
        ["bound", "refined range", "similarity", "disparity", "candidates"],
        rows,
    )
    return rows


def test_similarity_monotone_in_bound(frontier):
    similarities = [row[2] for row in frontier]
    assert similarities == sorted(similarities, reverse=True)


def test_bound_always_satisfied(frontier):
    for bound, _, _, disparity, _ in frontier:
        assert disparity <= bound


def test_loose_bound_keeps_original(frontier):
    assert frontier[0][2] == 1.0


@pytest.fixture(scope="module")
def rewrite_costs(applicants):
    rows = []
    for min_count in (50, 150, 300, 500):
        result = coverage_rewrite(
            applicants, "score", LO, HI, "group", min_count=min_count
        )
        rows.append(
            (
                min_count,
                f"[{result.lo:.1f}, {result.hi:.1f}]",
                result.added_rows,
                min(result.group_counts.values()),
            )
        )
    print_table(
        "E11b: coverage rewriting cost vs per-group minimum",
        ["min count", "relaxed range", "added rows", "min group count"],
        rows,
    )
    return rows


def test_rewrite_cost_monotone(rewrite_costs):
    added = [row[2] for row in rewrite_costs]
    assert added == sorted(added)
    for min_count, _, _, achieved in rewrite_costs:
        assert achieved >= min_count


def test_benchmark_fair_refinement(
    benchmark, applicants, frontier, rewrite_costs
):
    benchmark.pedantic(
        lambda: fair_range_refinement(
            applicants, "score", LO, HI, "group", max_disparity=50
        ),
        rounds=3,
        iterations=1,
    )


def test_benchmark_coverage_rewrite(benchmark, applicants):
    benchmark(
        lambda: coverage_rewrite(
            applicants, "score", LO, HI, "group", min_count=200
        )
    )
