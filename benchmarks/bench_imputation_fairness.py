"""E8 — Fairness of imputation (Zhang & Long, NeurIPS 2021).

Setting: the minority group's value distribution sits several standard
deviations away from the majority's (think lab measurements that differ
physiologically across populations).  Reproduced shapes, over
missingness mechanisms (MCAR / MAR-on-race / MNAR) and imputers:

* global-mean imputation has large imputation-accuracy parity — every
  hole is dragged to the majority-dominated global mean, so the minority
  group's imputations are systematically wrong;
* group-conditional mean and kNN (whose auxiliary features carry the
  group signal) shrink both the minority RMSE and the parity difference;
* the damage concentrates on the minority precisely under MAR-on-race —
  the §2.4 interaction of missingness with group membership.
"""

import numpy as np
import pytest
from benchmarks.conftest import print_table

from respdi.cleaning import (
    GroupMeanImputer,
    HotDeckImputer,
    KNNImputer,
    MeanImputer,
    imputation_accuracy_parity,
)
from respdi.datagen import inject_mar, inject_mcar, inject_mnar
from respdi.table import Schema, Table

SHIFT = 4.0  # minority mean sits 4 sigma from the majority mean


@pytest.fixture(scope="module")
def clean_table():
    rng = np.random.default_rng(31)
    n_majority, n_minority = 3000, 600
    x = np.concatenate(
        [rng.normal(0, 1, n_majority), rng.normal(SHIFT, 1, n_minority)]
    )
    # Auxiliary features correlated with x (carry the group signal the
    # kNN imputer exploits).
    z1 = x + rng.normal(0, 0.5, len(x))
    z2 = x + rng.normal(0, 0.5, len(x))
    groups = ["white"] * n_majority + ["black"] * n_minority
    schema = Schema(
        [
            ("race", "categorical"),
            ("x0", "numeric"),
            ("z1", "numeric"),
            ("z2", "numeric"),
        ]
    )
    return Table(schema, {"race": groups, "x0": x, "z1": z1, "z2": z2})


def mechanisms(table):
    return {
        "MCAR": lambda: inject_mcar(table, "x0", 0.25, rng=32),
        "MAR(race)": lambda: inject_mar(
            table, "x0", "race", {"black": 0.45, "white": 0.1}, rng=33
        ),
        "MNAR": lambda: inject_mnar(table, "x0", 0.25, slope=1.5, rng=34),
    }


def imputers():
    return {
        "global-mean": lambda: MeanImputer("x0"),
        "group-mean": lambda: GroupMeanImputer("x0", ["race"]),
        "hot-deck": lambda: HotDeckImputer("x0", ["race"], rng=35),
        "kNN": lambda: KNNImputer("x0", ["z1", "z2"], k=7),
    }


@pytest.fixture(scope="module")
def parity_results(clean_table):
    clean_values = np.asarray(clean_table.column("x0"), dtype=float)
    results = {}
    rows = []
    for mech_name, inject in mechanisms(clean_table).items():
        dirty, mask = inject()
        for imp_name, make_imputer in imputers().items():
            imputed = make_imputer().fit_transform(dirty)
            report = imputation_accuracy_parity(
                imputed, "x0", clean_values, mask, ["race"]
            )
            results[(mech_name, imp_name)] = report
            rows.append(
                (
                    mech_name,
                    imp_name,
                    round(report.group_rmse[("black",)], 3),
                    round(report.group_rmse[("white",)], 3),
                    round(report.accuracy_parity_difference, 3),
                )
            )
    print_table(
        "E8: imputation accuracy parity (mechanism x imputer)",
        ["mechanism", "imputer", "rmse black", "rmse white", "parity diff"],
        rows,
    )
    return results


def test_global_mean_unfair_under_group_shift(parity_results):
    for mechanism in ("MCAR", "MAR(race)"):
        report = parity_results[(mechanism, "global-mean")]
        # The global mean sits near the majority; minority holes land far
        # from their true values.
        assert report.group_rmse[("black",)] > report.group_rmse[("white",)] + 1.0
        assert report.worst_group == ("black",)
        assert report.accuracy_parity_difference > 0.2


def test_group_mean_restores_parity(parity_results):
    for mechanism in ("MCAR", "MAR(race)", "MNAR"):
        unfair = parity_results[(mechanism, "global-mean")]
        fair = parity_results[(mechanism, "group-mean")]
        assert (
            fair.accuracy_parity_difference
            < unfair.accuracy_parity_difference
        )
        assert fair.group_rmse[("black",)] < unfair.group_rmse[("black",)]


def test_knn_exploits_auxiliary_features(parity_results):
    for mechanism in ("MCAR", "MAR(race)"):
        knn = parity_results[(mechanism, "kNN")]
        global_mean = parity_results[(mechanism, "global-mean")]
        assert knn.group_rmse[("black",)] < global_mean.group_rmse[("black",)]
        # kNN with informative neighbors beats even group-mean on RMSE.
        assert knn.group_rmse[("black",)] < 1.0


def test_mar_concentrates_holes_on_minority(clean_table):
    _, mask = inject_mar(
        clean_table, "x0", "race", {"black": 0.45, "white": 0.1}, rng=36
    )
    race = clean_table.column("race")
    black_rate = mask[race == "black"].mean()
    white_rate = mask[race == "white"].mean()
    assert black_rate > 3 * white_rate


def test_benchmark_group_mean_imputer(benchmark, clean_table, parity_results):
    dirty, _ = inject_mcar(clean_table, "x0", 0.25, rng=37)

    def run():
        return GroupMeanImputer("x0", ["race"]).fit_transform(dirty)

    benchmark(run)
