"""E18 — Query service caching (warm generation-keyed cache vs. recompute).

Reproduced shape: against a persisted catalog, a repeated query mix
served from the :class:`QueryService` result cache is **at least 5×
faster** than recomputing every answer — while returning byte-identical
results (the cache key is the exact ``(generation, fingerprint)`` pair,
so a hit can only ever return what the uncached path would compute).
Every pass rebuilds its ``Query`` descriptors from scratch, so the
warm timing honestly includes fingerprinting the query tables.
"""

import time

import numpy as np
import pytest
from benchmarks.conftest import print_table

from respdi.catalog import CatalogStore
from respdi.service import ContainmentQuery, JoinQuery, KeywordQuery, QueryService, UnionQuery
from respdi.table import Schema, Table

SEED = 7
N_TABLES = 30
ROWS_PER_TABLE = 3000
KEY_DOMAIN = 400
REPEATS = 5

_SCHEMA = Schema([("key", "categorical"), ("f1", "numeric"), ("f2", "numeric")])


def _make_table(index, rng):
    prefix = "shared" if index % 4 == 0 else f"k{index}"
    draws = rng.integers(0, KEY_DOMAIN, size=ROWS_PER_TABLE)
    return Table(
        _SCHEMA,
        {
            "key": [f"{prefix}_{value}" for value in draws],
            "f1": rng.normal(size=ROWS_PER_TABLE),
            "f2": rng.normal(size=ROWS_PER_TABLE),
        },
    )


@pytest.fixture(scope="module")
def lake_tables():
    rng = np.random.default_rng(13)
    return {f"t{i}": _make_table(i, rng) for i in range(N_TABLES)}


@pytest.fixture(scope="module")
def service(lake_tables, tmp_path_factory):
    directory = tmp_path_factory.mktemp("service") / "cat"
    CatalogStore.build(directory, lake_tables, rng=SEED)
    return QueryService(directory, cache_size=64)


def _query_mix(lake_tables):
    """Fresh descriptors every call: equal fingerprints, new objects."""
    probe = lake_tables["t0"].head(600)
    keys = lake_tables["t4"].unique("key")[:200]
    return [
        KeywordQuery(text="shared", k=10),
        UnionQuery(table=probe, k=10),
        JoinQuery(values=tuple(keys), k=10),
        ContainmentQuery(values=tuple(keys), threshold=0.5, k=10),
    ]


def _run_pass(service, lake_tables, cached):
    rendered = []
    start = time.perf_counter()
    for _ in range(REPEATS):
        for query in _query_mix(lake_tables):
            rendered.append(query.render(service.query(query, cached=cached)))
    return rendered, time.perf_counter() - start


def test_warm_cache_at_least_5x_faster_than_recompute(service, lake_tables):
    cold_results, cold_seconds = _run_pass(service, lake_tables, cached=False)
    # Prime: the first cached pass pays every miss (compute + insert).
    prime_results, prime_seconds = _run_pass(service, lake_tables, cached=True)
    warm_results, warm_seconds = _run_pass(service, lake_tables, cached=True)

    queries = REPEATS * 4
    speedup = cold_seconds / warm_seconds
    print_table(
        "E18: query service, recompute vs. warm generation-keyed cache "
        f"({N_TABLES} tables x {ROWS_PER_TABLE} rows, {queries} queries/pass)",
        ["pass", "seconds", "queries/s", "speedup"],
        [
            [
                "uncached (recompute all)",
                f"{cold_seconds:.3f}",
                f"{queries / cold_seconds:.0f}",
                "1.0x",
            ],
            [
                "cached, cold cache (all misses)",
                f"{prime_seconds:.3f}",
                f"{queries / prime_seconds:.0f}",
                f"{cold_seconds / prime_seconds:.1f}x",
            ],
            [
                "cached, warm cache (all hits)",
                f"{warm_seconds:.3f}",
                f"{queries / warm_seconds:.0f}",
                f"{speedup:.1f}x",
            ],
        ],
    )

    assert cold_results == prime_results == warm_results, (
        "cached results must be byte-identical to recomputed ones"
    )
    assert service.cache.hits >= queries  # the warm pass really hit
    assert speedup >= 5.0, (
        f"warm cache must be >=5x faster than recompute, got {speedup:.1f}x"
    )


def test_batch_query_many_matches_singles(service, lake_tables):
    """`query_many` (one pinned snapshot, parallel fan-out) returns the
    same bytes as issuing the queries one by one."""
    queries = _query_mix(lake_tables)
    start = time.perf_counter()
    batch = service.query_many(queries, cached=False)
    batch_seconds = time.perf_counter() - start
    singles = [service.query(query, cached=False) for query in queries]
    print_table(
        "E18b: query_many batch over one pinned snapshot",
        ["path", "seconds"],
        [["query_many x4", f"{batch_seconds:.3f}"]],
    )
    assert [repr(result) for result in batch] == [
        repr(result) for result in singles
    ]
